//! Lowering a [`SystemBuilder`] description into the `dmi-analyze`
//! [`SystemGraph`] IR.
//!
//! This mirrors exactly what [`SystemBuilder::build`] wires — the same
//! instance names, the same subscription set, the same address map —
//! but produces only facts, never components: lowering is pure, which
//! is what makes `SystemBuilder::analyze()` side-effect-free and
//! `McSystem::analyze()` (answered from the graph captured at build
//! time) provably inert.

use dmi_analyze::{Footprint, NodeKind, ReachEdge, RegionInfo, SubEdge, SystemGraph, WatchRef};
use dmi_kernel::Edge;

use crate::builder::{MasterSlot, SystemBuilder};
use crate::config::InterconnectKind;
use crate::run_ctl::Watch;

/// Lowers the description plus optional watchpoints; see the module
/// docs. Invalid descriptions lower too (the analyzer flags what it
/// can) — validation stays `SystemBuilder::validate`'s job.
pub(crate) fn lower(b: &SystemBuilder, watches: &[Watch]) -> SystemGraph {
    let mut g = SystemGraph::new();
    g.has_address_info = true;
    let clk = g.add_clock("clk", b.clock_period);
    let sub_clk = |g: &mut SystemGraph, node| {
        g.subs.push(SubEdge {
            signal: "clk".to_string(),
            reader: node,
            edges: Edge::Rising,
            clock: Some(clk),
            writer: None,
        });
    };

    // Masters, in wiring/arbitration order, with `build`'s names.
    let mut cpu_ordinal = 0usize;
    let mut kind_counts: Vec<(&'static str, usize)> = Vec::new();
    let mut finish_signals = Vec::new();
    for slot in &b.masters {
        let (name, kind, finish) = match slot {
            MasterSlot::Cpu(_) => {
                let i = cpu_ordinal;
                cpu_ordinal += 1;
                (format!("cpu{i}"), NodeKind::Cpu, format!("cpu{i}.halted"))
            }
            MasterSlot::Custom(spec) => {
                let kind = spec.kind();
                let n = match kind_counts.iter_mut().find(|(k, _)| *k == kind) {
                    Some((_, n)) => {
                        *n += 1;
                        *n - 1
                    }
                    None => {
                        kind_counts.push((kind, 1));
                        0
                    }
                };
                (format!("{kind}{n}"), NodeKind::Master, format!("{kind}{n}.done"))
            }
        };
        let node = g.add_node(name, kind);
        sub_clk(&mut g, node);
        g.master_nodes.push(node);
        finish_signals.push((finish, node));
        if let MasterSlot::Custom(spec) = slot {
            for (base, len) in spec.address_footprint() {
                g.footprints.push(Footprint {
                    master: node,
                    base,
                    len,
                });
            }
        }
    }

    // Memories and their decode windows.
    for (j, spec) in b.mems.iter().enumerate() {
        let node = g.add_node(format!("mem{j}"), NodeKind::Memory);
        sub_clk(&mut g, node);
        g.mem_nodes.push(node);
        g.regions.push(RegionInfo {
            base: spec.base,
            size: spec.window,
            mem: node,
            model: spec.model.name(),
        });
    }

    // The interconnect, and the minimum master→slave transaction
    // latency its FSM allows: one cycle to sample the request plus the
    // configured arbitration cycles. Every reach edge carries it.
    let (bus_name, arb_cycles) = match &b.interconnect {
        InterconnectKind::SharedBus(cfg) => ("bus", cfg.arbitration_latency),
        InterconnectKind::Crossbar(cfg) => ("xbar", cfg.arbitration_latency),
    };
    let bus = g.add_node(bus_name, NodeKind::Interconnect);
    sub_clk(&mut g, bus);
    let min_latency = (1 + arb_cycles) * b.clock_period;
    for m in 0..g.master_nodes.len() {
        for r in 0..g.regions.len() {
            g.reaches.push(ReachEdge {
                master: g.master_nodes[m],
                region: r,
                min_latency,
            });
        }
    }

    // The halt monitor listens to every finish wire; the writer of each
    // is statically known (the master that owns it).
    let mon = g.add_node("monitor", NodeKind::Monitor);
    for (signal, writer) in finish_signals {
        g.subs.push(SubEdge {
            signal,
            reader: mon,
            edges: Edge::Rising,
            clock: None,
            writer: Some(writer),
        });
    }

    for w in watches {
        g.watches.push(WatchRef {
            mem: w.mem.0,
            location: w.location,
        });
    }
    if let Some(plan) = &b.faults {
        g.fault_specs = plan.specs().to_vec();
    }
    g
}
