//! Deterministic fault injection, end to end: the empty-plan twin is
//! cycle-bit-identical to a fault-free build across kernel
//! configurations, seeded plans replay exactly, each protocol backend
//! survives directed faults under the DMA retry policy, and exhausted
//! recovery escalates into the typed `StopCause::Fault`.

use std::time::Duration;

use dmi_core::{Opcode, Status};
use dmi_gsm::pipeline::{self, PipelineCfg};
use dmi_masters::{BurstSpec, DmaConfig, DmaEngine, DmaKind, RetryPolicy};
use dmi_system::{
    mem_base, CpuSpec, FaultKind, FaultPlan, FaultSite, FaultSpec, FaultTrigger, McSystem, MemSpec,
    QueueKind, RunReport, StopCause, StopCondition, SystemBuilder,
};

/// The headline experiment's pinned cycle count (GSM pipeline, 2
/// frames, 1 wrapper memory, seed 0x5EED — the `exp_headline` bench
/// configuration) — the number every fast-path twin in the repo is
/// measured against.
const HEADLINE_CYCLES: u64 = 436_964;

/// Builds and runs the headline GSM configuration with explicit kernel
/// knobs and an optional fault plan.
fn gsm_run(queue: QueueKind, calendar: bool, plan: Option<FaultPlan>, enabled: bool) -> RunReport {
    let cfg = PipelineCfg {
        n_frames: 2,
        mem_bases: vec![mem_base(0)],
        seed: 0x5EED,
    };
    let mut b = SystemBuilder::new().queue(queue).clock_calendar(calendar);
    if let Some(p) = plan {
        b = b.faults(p).fault_injection(enabled);
    }
    for program in pipeline::stage_programs(&cfg) {
        b.add_cpu(CpuSpec::new(program));
    }
    b.add_memory(MemSpec::wrapper(mem_base(0)));
    let mut sys = b.build().expect("gsm pipeline system");
    let r = sys.run(u64::MAX / 4);
    assert!(r.all_ok(), "{}", r.summary());
    r
}

#[test]
fn empty_plan_is_cycle_bit_identical_across_kernel_configs() {
    // The tentpole discipline: compiling the fault hooks in and wiring
    // an *empty* plan must not move a single cycle, under either event
    // queue and with the clock calendar on or off.
    for queue in [QueueKind::Heap, QueueKind::Wheel] {
        for calendar in [true, false] {
            let base = gsm_run(queue, calendar, None, true);
            let twin = gsm_run(queue, calendar, Some(FaultPlan::new(0xF00D)), true);
            assert_eq!(
                base.sim_cycles, twin.sim_cycles,
                "empty plan moved cycles under {queue:?}/calendar={calendar}"
            );
            assert_eq!(base.sim_cycles, HEADLINE_CYCLES);
            assert!(!twin.faults.any(), "empty plan injected something");
            assert_eq!(base.kernel.events, twin.kernel.events);
        }
    }
}

#[test]
fn disabled_controller_with_nonempty_plan_is_inert() {
    // The runtime toggle, pinned at build time: a plan full of faults
    // with injection off is the same simulation as no plan at all.
    let plan = FaultPlan::new(1).with(FaultSpec::new(
        FaultSite::MemOp {
            mem: 0,
            op: None,
            master: None,
        },
        FaultTrigger::Every { first: 1, period: 1 },
        FaultKind::Status(Status::Busy),
    ));
    let twin = gsm_run(QueueKind::Heap, true, Some(plan), false);
    assert_eq!(twin.sim_cycles, HEADLINE_CYCLES);
    assert!(!twin.faults.any());
}

/// A lossy-slave DMA scenario: one burst fill engine with a retry
/// policy against one wrapper memory carrying the given plan.
fn lossy_dma_sys(queue: QueueKind, plan: FaultPlan) -> McSystem {
    let mut b = SystemBuilder::new().queue(queue).faults(plan).fault_injection(true);
    b.add_memory(MemSpec::wrapper(mem_base(0)));
    b.add_master(Box::new(DmaEngine::new(DmaConfig {
        kind: DmaKind::Fill { seed: 0xC0DE },
        dst: mem_base(0),
        words: 64,
        passes: 2,
        burst: Some(BurstSpec {
            beats: 16,
            verify: false,
            at: None,
        }),
        retry: Some(RetryPolicy {
            max_retries: 10,
            backoff_cycles: 4,
            escalate: false,
        }),
        ..DmaConfig::default()
    })));
    b.build().expect("lossy dma system")
}

fn lossy_plan() -> FaultPlan {
    FaultPlan::new(0xDEAD_BEEF)
        .with(FaultSpec::new(
            FaultSite::MemOp {
                mem: 0,
                op: None,
                master: None,
            },
            // ~1/8 of commands answer Busy.
            FaultTrigger::Random {
                threshold: 0x2000_0000,
            },
            FaultKind::Status(Status::Busy),
        ))
        .with(FaultSpec::new(
            FaultSite::MemBeat {
                mem: 0,
                master: None,
                writing: Some(true),
            },
            // ~1/64 of write beats kill the burst.
            FaultTrigger::Random {
                threshold: 0x0400_0000,
            },
            FaultKind::AbortBurst,
        ))
        .with(FaultSpec::new(
            FaultSite::BusAccess { master: None },
            // ~1/16 of grants stall four extra cycles.
            FaultTrigger::Random {
                threshold: 0x1000_0000,
            },
            FaultKind::GrantStall { cycles: 4 },
        ))
}

#[test]
fn seeded_fault_scenario_replays_bit_identically() {
    // Same plan + seed => same cycles and the same FaultStats, run after
    // run and across event-queue kinds (the scheduling substrate must
    // not leak into the fault schedule).
    let mut reports = Vec::new();
    for queue in [QueueKind::Heap, QueueKind::Heap, QueueKind::Wheel] {
        let mut sys = lossy_dma_sys(queue, lossy_plan());
        let r = sys.run(10_000_000);
        assert!(r.all_ok(), "{}", r.summary());
        reports.push(r);
    }
    let first = &reports[0];
    assert!(first.faults.injected > 0, "lossy plan never fired");
    assert!(first.faults.retried > 0, "faults never forced a retry");
    assert!(first.faults.recovered > 0, "retries never recovered");
    assert_eq!(first.faults.escalated, 0);
    for r in &reports[1..] {
        assert_eq!(first.sim_cycles, r.sim_cycles, "replay moved cycles");
        assert_eq!(first.faults, r.faults, "replay changed the fault schedule");
        assert_eq!(first.masters[0].stats, r.masters[0].stats);
    }
}

/// One burst engine with the default retry policy against `mem`,
/// faulted by `plan`; returns the finished report.
fn directed_run(mem: MemSpec, plan: FaultPlan, burst: BurstSpec) -> RunReport {
    let mut b = SystemBuilder::new().faults(plan).fault_injection(true);
    b.add_memory(mem);
    b.add_master(Box::new(DmaEngine::new(DmaConfig {
        kind: DmaKind::Fill { seed: 0x5A00 },
        dst: mem_base(0),
        words: 32,
        passes: 1,
        burst: Some(burst),
        retry: Some(RetryPolicy::default()),
        ..DmaConfig::default()
    })));
    let mut sys = b.build().expect("directed fault system");
    sys.run(10_000_000)
}

#[test]
fn nth_alloc_status_fault_recovers_on_both_dynamic_backends() {
    // The first ALLOC answers Locked exactly once; the retry policy
    // re-issues the dialogue and the transfer completes on wrapper and
    // simheap alike.
    for mem in [MemSpec::wrapper(mem_base(0)), MemSpec::simheap(mem_base(0))] {
        let plan = FaultPlan::new(3).with(
            FaultSpec::new(
                FaultSite::MemOp {
                    mem: 0,
                    op: Some(Opcode::Alloc),
                    master: None,
                },
                FaultTrigger::Nth(1),
                FaultKind::Status(Status::Locked),
            )
            .limit(1),
        );
        let r = directed_run(
            mem,
            plan,
            BurstSpec {
                beats: 8,
                verify: false,
                at: None,
            },
        );
        assert!(r.all_ok(), "{}", r.summary());
        let s = &r.masters[0].stats;
        assert!(s.retries >= 1, "no retry recorded");
        assert!(s.recovered >= 1, "recovery not recorded");
        assert_eq!(s.fault, None);
        assert_eq!(s.error_statuses.get(Status::Locked), 1);
        assert_eq!(r.faults.injected, 1);
        assert_eq!(r.faults.mem_ops, 1);
        assert_eq!(r.faults.per_spec, vec![1]);
    }
}

#[test]
fn chunk_status_fault_recovers_on_static_protocol() {
    // The allocation-less baseline: the engine streams at a fixed table
    // offset, the first WriteBurst command is faulted, the chunk
    // dialogue is retried.
    let plan = FaultPlan::new(4).with(
        FaultSpec::new(
            FaultSite::MemOp {
                mem: 0,
                op: Some(Opcode::WriteBurst),
                master: None,
            },
            FaultTrigger::Nth(1),
            FaultKind::Status(Status::Busy),
        )
        .limit(1),
    );
    let r = directed_run(
        MemSpec::static_protocol(mem_base(0)),
        plan,
        BurstSpec {
            beats: 8,
            verify: true,
            at: Some(0x40),
        },
    );
    assert!(r.all_ok(), "{}", r.summary());
    let s = &r.masters[0].stats;
    assert!(s.retries >= 1);
    assert!(s.recovered >= 1);
    assert_eq!(s.error_statuses.get(Status::Busy), 1);
    assert_eq!(r.faults.mem_ops, 1);
    // The payload still landed intact: the verify pass read every word
    // back clean.
    assert_eq!(r.masters[0].stats.fault, None);
}

#[test]
fn write_beat_bit_flip_is_caught_by_the_verify_pass() {
    // Data corruption, not status: the 5th write beat is XOR-flipped on
    // its way into the backend, so exactly one verify read-back
    // mismatches — the legacy sequencing carries on (a flip is silent at
    // the protocol level).
    let plan = FaultPlan::new(5).with(
        FaultSpec::new(
            FaultSite::MemBeat {
                mem: 0,
                master: None,
                writing: Some(true),
            },
            FaultTrigger::Nth(5),
            FaultKind::FlipData { mask: 0x8000_0001 },
        )
        .limit(1),
    );
    let mut b = SystemBuilder::new().faults(plan).fault_injection(true);
    let mem = b.add_memory(MemSpec::wrapper(mem_base(0)));
    b.add_master(Box::new(DmaEngine::new(DmaConfig {
        kind: DmaKind::Fill { seed: 0x5A00 },
        dst: mem_base(0),
        words: 32,
        passes: 1,
        burst: Some(BurstSpec {
            beats: 8,
            verify: true,
            at: None,
        }),
        retry: None, // a flip is silent at the protocol level
        ..DmaConfig::default()
    })));
    let mut sys = b.build().expect("bit-flip system");
    let r = sys.run(10_000_000);
    assert!(r.all_ok(), "{}", r.summary());
    assert_eq!(r.faults.mem_beats, 1);
    assert_eq!(r.faults.injected, 1);
    // The 5th write beat (word index 4) landed flipped; its neighbours
    // are clean. (Wrapper vptrs start at 0, so the watch location is the
    // word's byte offset.)
    let expect = |w| DmaConfig::fill_word(0x5A00, 32, 0, w);
    assert_eq!(sys.watch_value(mem, 4 * 4), Some(expect(4) ^ 0x8000_0001));
    assert_eq!(sys.watch_value(mem, 3 * 4), Some(expect(3)));
    assert_eq!(sys.watch_value(mem, 5 * 4), Some(expect(5)));
}

#[test]
fn aborted_burst_is_retried_and_recovers() {
    // A burst killed mid-chunk: the sticky dead status surfaces at the
    // chunk's post-transfer STATUS check, the chunk is replayed from its
    // own setup, and the transfer completes.
    let plan = FaultPlan::new(6).with(
        FaultSpec::new(
            FaultSite::MemBeat {
                mem: 0,
                master: None,
                writing: Some(true),
            },
            FaultTrigger::Nth(3),
            FaultKind::AbortBurst,
        )
        .limit(1),
    );
    let r = directed_run(
        MemSpec::wrapper(mem_base(0)),
        plan,
        BurstSpec {
            beats: 8,
            verify: true,
            at: None,
        },
    );
    assert!(r.all_ok(), "{}", r.summary());
    let s = &r.masters[0].stats;
    assert!(s.retries >= 1, "abort must force a chunk retry");
    assert!(s.recovered >= 1);
    assert!(s.error_statuses.get(Status::OutOfBounds) >= 1);
    assert_eq!(s.fault, None);
    assert_eq!(r.faults.mem_beats, 1);
}

#[test]
fn exhausted_retries_escalate_to_a_typed_fault_stop() {
    // Every ALLOC fails, forever: the engine retries per policy, gives
    // up, and (escalate = true) stops the whole run with the typed
    // cause instead of hanging or retiring quietly.
    let plan = FaultPlan::new(7).with(FaultSpec::new(
        FaultSite::MemOp {
            mem: 0,
            op: Some(Opcode::Alloc),
            master: None,
        },
        FaultTrigger::Every { first: 1, period: 1 },
        FaultKind::Status(Status::OutOfMemory),
    ));
    let mut b = SystemBuilder::new().faults(plan).fault_injection(true);
    b.add_memory(MemSpec::wrapper(mem_base(0)));
    b.add_master(Box::new(DmaEngine::new(DmaConfig {
        kind: DmaKind::Fill { seed: 1 },
        dst: mem_base(0),
        words: 16,
        passes: 1,
        burst: Some(BurstSpec {
            beats: 8,
            verify: false,
            at: None,
        }),
        retry: Some(RetryPolicy {
            max_retries: 2,
            backoff_cycles: 1,
            escalate: true,
        }),
        ..DmaConfig::default()
    })));
    let mut sys = b.build().expect("escalating system");
    let r = sys.run(10_000_000);
    assert!(!r.all_ok());
    let fr = match r.cause {
        StopCause::Fault(fr) => fr,
        other => panic!("expected StopCause::Fault, got {other:?}: {:?}", r.error),
    };
    assert_eq!(fr.master, 0);
    assert_eq!(fr.error.retries, 2, "policy allowed 2 retries");
    assert_eq!(fr.error.status, Some(Status::OutOfMemory));
    assert!(r.error.as_deref().is_some_and(|e| e.starts_with("fault:")), "{:?}", r.error);
    assert_eq!(r.faults.escalated, 1);
    assert_eq!(r.faults.retried, 2);
    assert_eq!(r.masters[0].stats.fault, Some(fr.error));
    // 1 first attempt + 2 retries, every dialogue observed the status.
    assert_eq!(r.masters[0].stats.error_statuses.get(Status::OutOfMemory), 3);
}

#[test]
fn wall_clock_deadline_stops_a_runaway_run() {
    // A workload that never finishes, bounded by host time: the run
    // comes back with StopCause::WallClock instead of spinning until the
    // cycle budget.
    let mut b = SystemBuilder::new();
    b.add_memory(MemSpec::wrapper(mem_base(0)));
    b.add_master(Box::new(DmaEngine::new(DmaConfig {
        kind: DmaKind::Fill { seed: 2 },
        dst: mem_base(0),
        words: 4,
        passes: u32::MAX,
        ..DmaConfig::default()
    })));
    let mut sys = b.build().expect("runaway system");
    // Timing the wall-clock stop condition requires reading the wall.
    #[allow(clippy::disallowed_methods)]
    let t0 = std::time::Instant::now();
    let r = sys.run_until(&StopCondition::wall_clock(Duration::from_millis(30)));
    assert_eq!(r.cause, StopCause::WallClock);
    assert!(!r.finished);
    assert!(t0.elapsed() >= Duration::from_millis(30));
}
