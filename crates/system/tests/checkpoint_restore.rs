//! System-state capture, end to end: a run resumed from a checkpoint is
//! cycle-bit-identical to the uninterrupted original — on the headline
//! GSM pipeline across event-queue kinds and calendar placements, under
//! live fault injection, from periodic crash-safe checkpoints, and
//! through the warm-fork API. Cache counters (decoded-instruction cache,
//! pointer-table TLB) are the one documented exception: they are rebuilt
//! cold after restore, never serialized.

use std::time::Duration;

use dmi_core::Status;
use dmi_gsm::pipeline::{self, PipelineCfg};
use dmi_masters::{BurstSpec, DmaConfig, DmaEngine, DmaKind, RetryPolicy};
use dmi_sw::{workloads, WorkloadCfg};
use dmi_system::{
    mem_base, CpuSpec, FaultKind, FaultPlan, FaultSite, FaultSpec, FaultTrigger, McSystem, MemSpec,
    QueueKind, RunReport, SnapshotError, StopCause, StopCondition, SystemBuilder,
};
use proptest::prelude::*;

/// The headline experiment's pinned cycle count (GSM pipeline, 2 frames,
/// 1 wrapper memory, seed 0x5EED).
const HEADLINE_CYCLES: u64 = 436_964;

/// Normalizes a report for restored-vs-continuous comparison: wall time
/// is host-side, and the cache counters legitimately diverge because a
/// restored system rebuilds its validated caches cold.
fn fingerprint(r: &RunReport) -> String {
    let mut r = r.clone();
    r.wall = Duration::ZERO;
    for c in &mut r.cpus {
        c.isa.icache_hits = 0;
        c.isa.icache_misses = 0;
    }
    for m in &mut r.mems {
        m.backend.tlb_hits = 0;
        m.backend.tlb_misses = 0;
    }
    format!("{r:?}")
}

/// Further drops the kernel and fast-path counters: those differ *by
/// construction* between calendar placements and queue kinds, so
/// cross-twin restores compare on the architectural outcome only.
fn functional_fingerprint(r: &RunReport) -> String {
    let mut r = r.clone();
    r.kernel = Default::default();
    r.fast_path = Default::default();
    fingerprint(&r)
}

/// The headline GSM pipeline under explicit kernel knobs, with the fault
/// layer compiled in (an empty seeded plan, so the controller's RNG
/// stream state rides through every snapshot).
fn gsm_system(queue: QueueKind, calendar: bool) -> McSystem {
    let cfg = PipelineCfg {
        n_frames: 2,
        mem_bases: vec![mem_base(0)],
        seed: 0x5EED,
    };
    let mut b = SystemBuilder::new()
        .queue(queue)
        .clock_calendar(calendar)
        .faults(FaultPlan::new(0xF00D))
        .fault_injection(true);
    for program in pipeline::stage_programs(&cfg) {
        b.add_cpu(CpuSpec::new(program));
    }
    b.add_memory(MemSpec::wrapper(mem_base(0)));
    b.build().expect("gsm pipeline system")
}

fn run_to_completion(sys: &mut McSystem) -> RunReport {
    sys.run(u64::MAX / 4)
}

#[test]
fn headline_restore_is_cycle_bit_identical_across_kernel_twins() {
    // Split the continuous run at a fixed cycle, checkpoint there, and
    // finish both the original and a restored twin: every counter that
    // is state (not cache) must match, and the two halves must add up
    // to the pinned headline total — under both queues and both
    // calendar placements.
    const SPLIT: u64 = 200_000;
    for queue in [QueueKind::Heap, QueueKind::Wheel] {
        for calendar in [true, false] {
            let label = format!("{queue:?}/calendar={calendar}");
            let mut cont = gsm_system(queue, calendar);
            let first = cont.run_until(&StopCondition::cycles(SPLIT));
            assert_eq!(first.cause, StopCause::CycleBudget, "{label}");
            assert_eq!(first.sim_cycles, SPLIT, "{label}");
            let snap = cont.checkpoint();
            let cont_rest = run_to_completion(&mut cont);
            assert!(cont_rest.all_ok(), "{label}: {}", cont_rest.summary());
            assert_eq!(
                first.sim_cycles + cont_rest.sim_cycles,
                HEADLINE_CYCLES,
                "{label}: checkpointing moved the headline cycle count"
            );

            let mut twin = gsm_system(queue, calendar);
            twin.restore(&snap).expect("restore onto identical twin");
            let twin_rest = run_to_completion(&mut twin);
            assert!(twin_rest.all_ok(), "{label}: {}", twin_rest.summary());
            assert_eq!(
                fingerprint(&twin_rest),
                fingerprint(&cont_rest),
                "{label}: restored run diverged from the continuous one"
            );
        }
    }
}

#[test]
fn snapshots_transfer_across_queue_and_calendar_twins() {
    // A snapshot taken on a heap/calendar-on system restores onto a
    // wheel/calendar-off twin (and completes with the identical
    // architectural outcome): the snapshot carries the schedule, the
    // target chooses the substrate.
    const SPLIT: u64 = 150_000;
    let mut src = gsm_system(QueueKind::Heap, true);
    src.run_until(&StopCondition::cycles(SPLIT));
    let snap = src.checkpoint();
    let src_rest = run_to_completion(&mut src);
    assert!(src_rest.all_ok(), "{}", src_rest.summary());

    let mut twin = gsm_system(QueueKind::Wheel, false);
    twin.restore(&snap).expect("cross-twin restore");
    let twin_rest = run_to_completion(&mut twin);
    assert!(twin_rest.all_ok(), "{}", twin_rest.summary());
    assert_eq!(
        functional_fingerprint(&twin_rest),
        functional_fingerprint(&src_rest),
        "cross-twin restore changed the architectural outcome"
    );
    assert_eq!(src_rest.sim_cycles, twin_rest.sim_cycles);
    assert_eq!(SPLIT + twin_rest.sim_cycles, HEADLINE_CYCLES);
}

#[test]
fn periodic_checkpointing_supports_crash_safe_resume() {
    // Run with periodic checkpoints to completion; "crash" by discarding
    // the system, resume from the last retained checkpoint in a fresh
    // twin, and land on the same headline outcome.
    let mut sys = gsm_system(QueueKind::Heap, true);
    let report = sys.run_until(&StopCondition::checkpoint_every(100_000));
    assert!(report.all_ok(), "{}", report.summary());
    assert_eq!(report.sim_cycles, HEADLINE_CYCLES);
    let (at, snap) = sys.take_last_checkpoint().expect("periodic checkpoint");
    assert_eq!(at, 400_000, "last checkpoint before completion");
    drop(sys); // the crash

    let mut resumed = gsm_system(QueueKind::Heap, true);
    resumed.restore(&snap).expect("resume from periodic checkpoint");
    let rest = run_to_completion(&mut resumed);
    assert!(rest.all_ok(), "{}", rest.summary());
    assert_eq!(at + rest.sim_cycles, HEADLINE_CYCLES);
}

#[test]
fn checkpoint_roundtrips_through_disk_bytes() {
    // The same save -> load -> restore path the CI round-trip job
    // drives, including the typed-error surface on a topology mismatch.
    let mut sys = gsm_system(QueueKind::Heap, true);
    sys.run_until(&StopCondition::cycles(50_000));
    let snap = sys.checkpoint();

    let dir = std::env::temp_dir().join("dmi_checkpoint_restore_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("headline.dmisnap");
    snap.save(&path).expect("save checkpoint");
    let loaded = dmi_system::Snapshot::load(&path).expect("load checkpoint");
    std::fs::remove_file(&path).ok();

    let mut twin = gsm_system(QueueKind::Heap, true);
    twin.restore(&loaded).expect("restore from disk image");
    let cont_rest = run_to_completion(&mut sys);
    let twin_rest = run_to_completion(&mut twin);
    assert_eq!(fingerprint(&twin_rest), fingerprint(&cont_rest));

    // Wrong topology: a 1-CPU system rejects the 4-CPU snapshot with a
    // typed mismatch, not a panic.
    let wl = WorkloadCfg {
        mem_base: mem_base(0),
        iterations: 2,
        ..WorkloadCfg::default()
    };
    let mut b = SystemBuilder::new();
    b.add_memory(MemSpec::wrapper(mem_base(0)));
    b.add_cpu(CpuSpec::new(workloads::scalar_rw(&wl)));
    let mut small = b.build().unwrap();
    match small.restore(&loaded) {
        Err(SnapshotError::Mismatch { .. }) => {}
        other => panic!("expected Mismatch, got {other:?}"),
    }
}

/// A lossy burst-DMA system: one fill engine with a retry policy, one
/// wrapper memory, and (optionally) a seeded random fault plan.
fn dma_system(plan: Option<FaultPlan>, enabled: bool) -> McSystem {
    let mut b = SystemBuilder::new();
    if let Some(p) = plan {
        b = b.faults(p).fault_injection(enabled);
    }
    b.add_memory(MemSpec::wrapper(mem_base(0)));
    b.add_master(Box::new(DmaEngine::new(DmaConfig {
        kind: DmaKind::Fill { seed: 0xC0DE },
        dst: mem_base(0),
        words: 64,
        passes: 4,
        burst: Some(BurstSpec {
            beats: 16,
            verify: true,
            at: None,
        }),
        retry: Some(RetryPolicy {
            max_retries: 10,
            backoff_cycles: 4,
            escalate: false,
        }),
        ..DmaConfig::default()
    })));
    b.build().expect("dma system")
}

fn lossy_plan() -> FaultPlan {
    FaultPlan::new(0xDEAD_BEEF).with(FaultSpec::new(
        FaultSite::MemOp {
            mem: 0,
            op: None,
            master: None,
        },
        // ~1/8 of commands answer Busy.
        FaultTrigger::Random {
            threshold: 0x2000_0000,
        },
        FaultKind::Status(Status::Busy),
    ))
}

#[test]
fn mid_fault_storm_checkpoint_restores_bit_identically() {
    // Checkpoint in the middle of live fault injection: the per-spec
    // splitmix64 stream positions are part of the state, so the
    // restored run replays the exact same fault schedule.
    let mut cont = dma_system(Some(lossy_plan()), true);
    let pre = cont.run_until(&StopCondition::cycles(2_000));
    assert_eq!(pre.cause, StopCause::CycleBudget, "split landed post-run");
    let snap = cont.checkpoint();
    let cont_rest = run_to_completion(&mut cont);
    assert!(cont_rest.all_ok(), "{}", cont_rest.summary());
    assert!(cont_rest.faults.injected > 0, "lossy plan never fired");
    assert!(cont_rest.faults.retried > 0);

    let mut twin = dma_system(Some(lossy_plan()), true);
    twin.restore(&snap).expect("restore mid-storm");
    let twin_rest = run_to_completion(&mut twin);
    assert_eq!(
        fingerprint(&twin_rest),
        fingerprint(&cont_rest),
        "restored fault schedule diverged"
    );
}

#[test]
fn escalated_fault_resumes_from_pre_fault_checkpoint_and_diverges() {
    // A run that escalates into StopCause::Fault can rewind: restore the
    // pre-fault checkpoint into a twin with an *empty* plan (the fault
    // section is skipped on shape mismatch) and the same workload
    // completes cleanly.
    let poison = FaultPlan::new(77).with(FaultSpec::new(
        FaultSite::MemOp {
            mem: 0,
            op: None,
            master: None,
        },
        // Fire on everything from op 10 onward (the transfer makes ~19
        // protocol ops): the engine's retry budget cannot outlast an
        // unconditional fault train.
        FaultTrigger::Every { first: 10, period: 1 },
        FaultKind::Status(Status::Busy),
    ));
    let escalate = |plan: FaultPlan, enabled: bool| {
        let mut b = SystemBuilder::new().faults(plan).fault_injection(enabled);
        b.add_memory(MemSpec::wrapper(mem_base(0)));
        b.add_master(Box::new(DmaEngine::new(DmaConfig {
            kind: DmaKind::Fill { seed: 0xC0DE },
            dst: mem_base(0),
            words: 64,
            passes: 4,
            burst: Some(BurstSpec {
                beats: 16,
                verify: false,
                at: None,
            }),
            retry: Some(RetryPolicy {
                max_retries: 2,
                backoff_cycles: 1,
                escalate: true,
            }),
            ..DmaConfig::default()
        })));
        b.build().expect("escalating system")
    };

    let mut doomed = escalate(poison.clone(), true);
    let pre = doomed.run_until(&StopCondition::cycles(100));
    assert_eq!(pre.cause, StopCause::CycleBudget, "escalated before the split");
    assert_eq!(pre.faults.injected, 0, "split landed inside the fault train");
    let snap = doomed.checkpoint();
    let crash = run_to_completion(&mut doomed);
    assert!(
        matches!(crash.cause, StopCause::Fault(_)),
        "expected escalation, got {:?}",
        crash.cause
    );

    // Same topology, empty plan: the pre-fault state replays, the fault
    // train never comes, the transfer completes.
    let mut healed = escalate(FaultPlan::new(77), true);
    healed.restore(&snap).expect("restore pre-fault state");
    let ok = run_to_completion(&mut healed);
    assert!(ok.all_ok(), "healed run failed: {}", ok.summary());
    assert_eq!(ok.faults.injected, 0, "empty plan injected faults");
}

#[test]
fn fork_fans_one_warm_checkpoint_into_divergent_continuations() {
    // Warm one lossy run past its allocation dialogue, then fork it
    // three ways: same plan (must replay the continuous run), empty
    // plan, and injection disabled. Each continuation is deterministic;
    // the fault-free pair agrees functionally and diverges from the
    // faulty one.
    let mut warm = dma_system(Some(lossy_plan()), true);
    let pre = warm.run_until(&StopCondition::cycles(1_500));
    assert_eq!(pre.cause, StopCause::CycleBudget, "warmup landed post-run");
    let snap = warm.checkpoint();
    let continuous = run_to_completion(&mut warm);
    assert!(continuous.faults.injected > 0);

    let build = |i: usize| match i {
        0 => dma_system(Some(lossy_plan()), true),
        1 => dma_system(Some(FaultPlan::new(1)), true),
        _ => dma_system(Some(lossy_plan()), false),
    };
    let reports: Vec<RunReport> = McSystem::fork(&snap, 3, build)
        .expect("fork three continuations")
        .iter_mut()
        .map(run_to_completion)
        .collect();
    for (i, r) in reports.iter().enumerate() {
        assert!(r.all_ok(), "continuation {i} failed: {}", r.summary());
    }
    // Continuation 0 carries the snapshot's RNG stream positions onward:
    // it IS the continuous run.
    assert_eq!(fingerprint(&reports[0]), fingerprint(&continuous));
    // The fault-free continuations diverge from the faulty one (the
    // retry backoffs cost cycles) but agree with each other on the
    // transferred payload.
    assert!(
        reports[1].sim_cycles < reports[0].sim_cycles,
        "fault-free continuation should finish sooner: {} vs {}",
        reports[1].sim_cycles,
        reports[0].sim_cycles
    );
    assert_eq!(reports[1].sim_cycles, reports[2].sim_cycles);
    assert_eq!(
        reports[1].masters[0].stats.transactions,
        reports[2].masters[0].stats.transactions
    );

    // Fork determinism: forking the same snapshot again replays each
    // continuation bit-identically.
    let again: Vec<RunReport> = McSystem::fork(&snap, 3, build)
        .expect("fork again")
        .iter_mut()
        .map(run_to_completion)
        .collect();
    for (r1, r2) in reports.iter().zip(&again) {
        assert_eq!(fingerprint(r1), fingerprint(r2));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Checkpoint at a random mid-run cycle of a CPU workload (ISS cores,
    /// wrapper memory, live pointer-table churn), restore in a fresh
    /// system, and finish both: identical outcome, cache counters aside.
    #[test]
    fn random_cycle_checkpoint_restores_identically(split in 500u64..20_000) {
        let build = || {
            let wl = WorkloadCfg {
                mem_base: mem_base(0),
                iterations: 30,
                ..WorkloadCfg::default()
            };
            let mut b = SystemBuilder::new();
            b.add_memory(MemSpec::wrapper(mem_base(0)));
            b.add_cpu(CpuSpec::new(workloads::alloc_churn(&wl)));
            b.build().unwrap()
        };
        let mut cont = build();
        cont.run_until(&StopCondition::cycles(split));
        let snap = cont.checkpoint();
        let cont_rest = run_to_completion(&mut cont);
        prop_assert!(cont_rest.all_ok(), "{}", cont_rest.summary());

        let mut twin = build();
        twin.restore(&snap).expect("restore at random split");
        let twin_rest = run_to_completion(&mut twin);
        prop_assert_eq!(fingerprint(&twin_rest), fingerprint(&cont_rest));
    }
}
