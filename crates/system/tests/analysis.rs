//! Static analysis at the builder level, end to end: the headline GSM
//! configuration analyzes clean, analyzing (before build, after build,
//! after run, any number of times) never moves a cycle — the reports
//! are bit-identical and pinned to the headline count — `build_checked`
//! gates on `Error`-severity findings only, and the address-level codes
//! (`A004`/`A005`/`A006`) fire on directed builder misconfigurations.

use std::time::Duration;

use dmi_gsm::pipeline::{self, PipelineCfg};
use dmi_masters::{DmaConfig, DmaEngine, DmaKind};
use dmi_sw::{workloads, WorkloadCfg};
use dmi_system::{
    mem_base, BuildError, Code, CpuSpec, FaultKind, FaultPlan, FaultSite, FaultSpec, FaultTrigger,
    MemSpec, RunReport, Severity, StopCondition, SystemBuilder,
};
use proptest::prelude::*;

/// The headline experiment's pinned cycle count (GSM pipeline, 2
/// frames, 1 wrapper memory, seed 0x5EED).
const HEADLINE_CYCLES: u64 = 436_964;

/// The headline GSM pipeline builder.
fn gsm_builder() -> SystemBuilder {
    let cfg = PipelineCfg {
        n_frames: 2,
        mem_bases: vec![mem_base(0)],
        seed: 0x5EED,
    };
    let mut b = SystemBuilder::new();
    for program in pipeline::stage_programs(&cfg) {
        b.add_cpu(CpuSpec::new(program));
    }
    b.add_memory(MemSpec::wrapper(mem_base(0)));
    b
}

/// Normalizes a report for bit-identity comparison: wall time is the
/// only host-side field.
fn fingerprint(r: &RunReport) -> String {
    let mut r = r.clone();
    r.wall = Duration::ZERO;
    format!("{r:?}")
}

#[test]
fn headline_analyzes_clean() {
    let report = gsm_builder().analyze();
    assert!(
        report.diagnostics.is_empty(),
        "headline must lint clean:\n{report}"
    );
    assert!(!report.has_errors());
    // 4 stage CPUs + 1 memory + bus + monitor, one clock, one shard.
    assert_eq!(report.graph.nodes.len(), 7);
    assert_eq!(report.graph.clocks.len(), 1);
    assert_eq!(report.plan.shards.len(), 1);
}

#[test]
fn analyze_before_and_after_run_is_bit_identical_to_a_plain_run() {
    let plain = {
        let mut sys = gsm_builder().build().expect("gsm system");
        sys.run(u64::MAX / 4)
    };
    assert_eq!(plain.sim_cycles, HEADLINE_CYCLES);

    // The probed twin: analyze on the builder, on the built system, run,
    // then analyze again. None of it may move a cycle.
    let b = gsm_builder();
    assert!(!b.analyze().has_errors());
    let mut sys = b.build().expect("gsm system");
    let before = sys.analyze();
    let probed = sys.run(u64::MAX / 4);
    let after = sys.analyze();

    assert_eq!(fingerprint(&plain), fingerprint(&probed));
    assert_eq!(format!("{before}"), format!("{after}"));
}

#[test]
fn build_checked_accepts_a_clean_system() {
    let mut sys = gsm_builder().build_checked().expect("clean system");
    let r = sys.run(1_000);
    assert!(r.error.is_none());
}

/// One wrapper memory plus a fill DMA aimed well outside every decode
/// window — the `A004` shape.
fn unmapped_dma_builder() -> SystemBuilder {
    let mut b = SystemBuilder::new();
    b.add_memory(MemSpec::wrapper(mem_base(0)));
    b.add_master(Box::new(DmaEngine::new(DmaConfig {
        kind: DmaKind::Fill { seed: 1 },
        dst: 0x4000_0000,
        words: 16,
        passes: 1,
        ..DmaConfig::default()
    })));
    b
}

#[test]
fn a004_unmapped_dma_footprint_fails_build_checked() {
    let report = unmapped_dma_builder().analyze();
    assert_eq!(report.errors().count(), 1);
    assert_eq!(report.diagnostics[0].code, Code::A004);
    assert_eq!(report.diagnostics[0].subject, "dma0");

    match unmapped_dma_builder().build_checked() {
        Err(BuildError::Analysis { diagnostics }) => {
            assert!(diagnostics.iter().any(|d| d.code == Code::A004));
            let text = format!(
                "{}",
                BuildError::Analysis { diagnostics }
            );
            assert!(text.contains("A004"), "error must name the code: {text}");
        }
        other => panic!("expected Analysis rejection, got {other:?}"),
    }

    // The unchecked build still works — the analyzer is opt-in.
    assert!(unmapped_dma_builder().build().is_ok());
}

#[test]
fn a005_watchpoints_are_linted_against_the_builder() {
    // A stale handle from a bigger donor builder: ordinal 2 does not
    // exist in the one-memory system under test.
    let mut donor = SystemBuilder::new();
    donor.add_memory(MemSpec::wrapper(mem_base(0)));
    donor.add_memory(MemSpec::wrapper(mem_base(1)));
    let stale = donor.add_memory(MemSpec::wrapper(mem_base(2)));

    let mut b = SystemBuilder::new();
    let table = b.add_memory(MemSpec::static_table(mem_base(0)));
    b.add_cpu(CpuSpec::new(workloads::scalar_rw(&WorkloadCfg {
        mem_base: mem_base(0),
        iterations: 1,
        ..WorkloadCfg::default()
    })));

    let bad_handle = b.analyze_with(&StopCondition::watch_word(stale, 0, 1));
    assert_eq!(bad_handle.errors().count(), 1);
    assert_eq!(bad_handle.diagnostics[0].code, Code::A005);

    let bad_offset = b.analyze_with(&StopCondition::watch_word(table, 0x2_0000, 1));
    assert_eq!(bad_offset.errors().count(), 1);
    assert_eq!(bad_offset.diagnostics[0].code, Code::A005);

    let fine = b.analyze_with(&StopCondition::watch_word(table, 0x100, 1));
    assert!(fine.diagnostics.is_empty(), "{fine}");
}

#[test]
fn a006_dead_fault_sites_warn_without_blocking_the_build() {
    let plan = FaultPlan::new(7)
        .with(FaultSpec::new(
            // Protocol fault on a direct static table: nothing to hook.
            FaultSite::MemOp {
                mem: 0,
                op: None,
                master: None,
            },
            FaultTrigger::Nth(1),
            FaultKind::Status(dmi_core::Status::Busy),
        ))
        .with(FaultSpec::new(
            // Memory ordinal that does not exist.
            FaultSite::MemOp {
                mem: 4,
                op: None,
                master: None,
            },
            FaultTrigger::Nth(1),
            FaultKind::Status(dmi_core::Status::Busy),
        ));
    let mut b = SystemBuilder::new().faults(plan).fault_injection(true);
    b.add_memory(MemSpec::static_table(mem_base(0)));
    b.add_cpu(CpuSpec::new(workloads::scalar_rw(&WorkloadCfg {
        mem_base: mem_base(0),
        iterations: 1,
        ..WorkloadCfg::default()
    })));

    let report = b.analyze();
    let a006: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.code == Code::A006)
        .collect();
    assert_eq!(a006.len(), 2, "{report}");
    assert!(a006.iter().all(|d| d.severity == Severity::Warn));
    assert!(!report.has_errors());
    assert!(b.build_checked().is_ok(), "warnings must not gate the build");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// `analyze()` is inert under arbitrary small topologies: any number
    /// of calls, on the builder and on the built system, leaves the run
    /// report bit-identical to a never-analyzed twin's.
    #[test]
    fn analyze_never_perturbs_a_run(
        n_cpus in 1usize..=3,
        n_mems in 1usize..=2,
        iterations in 1u32..=4,
        probes in 1usize..=3,
    ) {
        let build = || {
            let mut b = SystemBuilder::new();
            for j in 0..n_mems {
                b.add_memory(MemSpec::wrapper(mem_base(j)));
            }
            for i in 0..n_cpus {
                b.add_cpu(CpuSpec::new(workloads::scalar_rw(&WorkloadCfg {
                    mem_base: mem_base(i % n_mems),
                    iterations,
                    ..WorkloadCfg::default()
                })));
            }
            b
        };

        let plain = build().build().unwrap().run(u64::MAX / 4);

        let b = build();
        for _ in 0..probes {
            prop_assert!(!b.analyze().has_errors());
        }
        let mut sys = b.build().unwrap();
        for _ in 0..probes {
            let _ = sys.analyze();
        }
        let probed = sys.run(u64::MAX / 4);

        prop_assert_eq!(fingerprint(&plain), fingerprint(&probed));
    }
}
