//! End-to-end co-simulation tests: CPUs, bus, and memory modules running
//! real workload programs cycle by cycle.

use dmi_core::{SimHeapConfig, StaticMemConfig, WrapperConfig};
use dmi_interconnect::CrossbarConfig;
use dmi_sw::{workloads, WorkloadCfg};
use dmi_system::{mem_base, InterconnectKind, McSystem, MemModelKind, SystemConfig};

fn wcfg(iterations: u32) -> WorkloadCfg {
    WorkloadCfg {
        mem_base: mem_base(0),
        iterations,
        ..WorkloadCfg::default()
    }
}

#[test]
fn single_cpu_alloc_churn_cycle_true() {
    let mut sys = McSystem::build(SystemConfig {
        programs: vec![workloads::alloc_churn(&wcfg(10))],
        ..SystemConfig::default()
    });
    let report = sys.run(10_000_000);
    assert!(report.all_ok(), "{}", report.summary());
    assert_eq!(report.mems[0].backend.allocs, 10);
    assert_eq!(report.mems[0].backend.frees, 10);
    assert!(report.cpus[0].cosim.transactions > 0);
    assert!(report.bus.transactions > 0);
    assert!(report.sim_cycles > 0);
}

#[test]
fn cycle_counts_are_reproducible() {
    let run = || {
        let mut sys = McSystem::build(SystemConfig {
            programs: vec![workloads::alloc_churn(&wcfg(5))],
            ..SystemConfig::default()
        });
        let r = sys.run(10_000_000);
        assert!(r.all_ok());
        r.sim_cycles
    };
    assert_eq!(run(), run(), "co-simulation must be deterministic");
}

#[test]
fn producer_consumer_across_the_bus() {
    let cfg = wcfg(12);
    let mut sys = McSystem::build(SystemConfig {
        programs: vec![
            workloads::pipe_producer(&cfg),
            workloads::pipe_consumer(&cfg),
        ],
        ..SystemConfig::default()
    });
    let report = sys.run(50_000_000);
    assert!(report.all_ok(), "{}", report.summary());
    // Both CPUs contended on the single bus.
    assert!(report.bus.master_wait_cycles.iter().any(|&w| w > 0));
}

#[test]
fn reservation_discipline_under_real_contention() {
    let cfg = wcfg(20);
    let mut sys = McSystem::build(SystemConfig {
        programs: vec![
            workloads::reserved_counter(&cfg, true),
            workloads::reserved_counter(&cfg, false),
            workloads::reserved_counter(&cfg, false),
        ],
        ..SystemConfig::default()
    });
    let report = sys.run(200_000_000);
    assert!(report.all_ok(), "{}", report.summary());
    // Final counter value must be 3 * 20 with no lost updates; verify via
    // the wrapper's host storage.
    let module = sys.memory(0).expect("wrapper module");
    let backend = module
        .backend()
        .as_any()
        .downcast_ref::<dmi_core::WrapperBackend>()
        .expect("wrapper backend");
    let entry = backend.table().iter().next().expect("counter allocation");
    let counter = u32::from_le_bytes(entry.host.bytes()[0..4].try_into().unwrap());
    assert_eq!(counter, 60, "no lost updates under reservations");
}

#[test]
fn four_cpus_four_memories_topology() {
    // The paper's headline topology shape: each CPU gets its own memory.
    let mut programs = Vec::new();
    for i in 0..4 {
        programs.push(workloads::alloc_churn(&WorkloadCfg {
            mem_base: mem_base(i),
            iterations: 6,
            ..WorkloadCfg::default()
        }));
    }
    let mut sys = McSystem::build(SystemConfig {
        programs,
        memories: vec![MemModelKind::Wrapper(WrapperConfig::default()); 4],
        ..SystemConfig::default()
    });
    assert_eq!(sys.cpu_count(), 4);
    assert_eq!(sys.mem_count(), 4);
    let report = sys.run(50_000_000);
    assert!(report.all_ok(), "{}", report.summary());
    for m in &report.mems {
        assert_eq!(m.backend.allocs, 6);
    }
}

#[test]
fn simheap_memory_runs_same_workload() {
    let mut sys = McSystem::build(SystemConfig {
        programs: vec![workloads::alloc_churn(&wcfg(8))],
        memories: vec![MemModelKind::SimHeap(SimHeapConfig::default())],
        ..SystemConfig::default()
    });
    let report = sys.run(50_000_000);
    assert!(report.all_ok(), "{}", report.summary());
    assert_eq!(report.mems[0].kind, "simheap");
    assert_eq!(report.mems[0].backend.allocs, 8);
}

#[test]
fn static_memory_serves_raw_traffic() {
    let mut sys = McSystem::build(SystemConfig {
        programs: vec![workloads::scalar_rw_static(&wcfg(32))],
        memories: vec![MemModelKind::Static(StaticMemConfig::default())],
        ..SystemConfig::default()
    });
    let report = sys.run(10_000_000);
    assert!(report.all_ok(), "{}", report.summary());
    assert_eq!(report.mems[0].kind, "static");
    assert!(report.mems[0].module.transactions >= 64);
}

#[test]
fn crossbar_and_bus_give_same_results() {
    let cfg0 = WorkloadCfg {
        mem_base: mem_base(0),
        iterations: 8,
        ..WorkloadCfg::default()
    };
    let cfg1 = WorkloadCfg {
        mem_base: mem_base(1),
        iterations: 8,
        ..WorkloadCfg::default()
    };
    let build = |ic: InterconnectKind| {
        McSystem::build(SystemConfig {
            programs: vec![workloads::alloc_churn(&cfg0), workloads::alloc_churn(&cfg1)],
            memories: vec![MemModelKind::Wrapper(WrapperConfig::default()); 2],
            interconnect: ic,
            ..SystemConfig::default()
        })
    };
    let mut bus_sys = build(InterconnectKind::SharedBus(Default::default()));
    let bus_report = bus_sys.run(50_000_000);
    assert!(bus_report.all_ok());

    let mut xbar_sys = build(InterconnectKind::Crossbar(CrossbarConfig::default()));
    let xbar_report = xbar_sys.run(50_000_000);
    assert!(xbar_report.all_ok());

    // Same functional outcome, fewer (or equal) cycles on the crossbar.
    assert!(
        xbar_report.sim_cycles <= bus_report.sim_cycles,
        "crossbar {} vs bus {}",
        xbar_report.sim_cycles,
        bus_report.sim_cycles
    );
}

#[test]
fn burst_workload_cycle_true() {
    let mut sys = McSystem::build(SystemConfig {
        programs: vec![workloads::burst_copy(&WorkloadCfg {
            mem_base: mem_base(0),
            iterations: 4,
            burst_len: 16,
            ..WorkloadCfg::default()
        })],
        ..SystemConfig::default()
    });
    let report = sys.run(20_000_000);
    assert!(report.all_ok(), "{}", report.summary());
    assert_eq!(report.mems[0].backend.burst_beats, 4 * 16 * 2);
}

#[test]
fn linked_list_cycle_true() {
    let mut sys = McSystem::build(SystemConfig {
        programs: vec![workloads::linked_list(&wcfg(16))],
        ..SystemConfig::default()
    });
    let report = sys.run(50_000_000);
    assert!(report.all_ok(), "{}", report.summary());
}
