//! Diagnostic: run the pipeline stages sequentially (1 frame) on the
//! functional bus and compare each stage's local buffers to the reference.

use dmi_core::{WrapperBackend, WrapperConfig};
use dmi_gsm::pipeline::{self, PipelineCfg};
use dmi_gsm::reference as r;
use dmi_iss::{CpuCore, LocalMemory, StepEvent};
use dmi_sw::FunctionalDsmBus;

const MEM0: u32 = 0x8000_0000;

fn read_words(cpu: &CpuCore, addr: u32, n: usize) -> Vec<i32> {
    (0..n)
        .map(|i| cpu.local().read32(addr + (i as u32) * 4).unwrap() as i32)
        .collect()
}

#[test]
fn stage_by_stage_against_reference() {
    let seed = 0xBEEF;
    let cfg = PipelineCfg {
        n_frames: 1,
        mem_bases: vec![MEM0],
        seed,
    };
    let progs = pipeline::stage_programs(&cfg);
    let mut bus = FunctionalDsmBus::new();
    bus.add_module(
        MEM0,
        0x1_0000,
        Box::new(WrapperBackend::new(WrapperConfig::default())),
    );

    // Reference values.
    let mut src = r::LcgSource::new(seed);
    let s = src.next_frame();
    let mut pre = r::PreState::default();
    let d = r::preprocess(&s, &mut pre);
    let (l_acf, _) = r::autocorrelation(&d);
    let rc = r::reflection_coefficients(&l_acf);
    let larq = r::quantize_lar(&r::rc_to_lar(&rc));
    let mut enc = r::Encoder::new();
    let mut src2 = r::LcgSource::new(seed);
    let frame = enc.encode_frame(&src2.next_frame());

    let mut cpus: Vec<CpuCore> = progs
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let mut c = CpuCore::new(i as u32, LocalMemory::new(0, 0x40000));
            c.load_program(p);
            c
        })
        .collect();

    // Run stages to completion in order (1 frame => no back-pressure).
    for (i, cpu) in cpus.iter_mut().enumerate() {
        bus.master = i as u8;
        match cpu.run(&mut bus, 500_000_000) {
            StepEvent::Halted => assert_eq!(cpu.exit_code(), 0, "stage {i} exit"),
            other => panic!("stage {i} did not halt: {other:?} fault {:?}", cpu.fault()),
        }
    }

    // Stage 0 locals.
    assert_eq!(read_words(&cpus[0], 0x10000, 160), s.to_vec(), "stage0 input");
    assert_eq!(read_words(&cpus[0], 0x10400, 160), d.to_vec(), "stage0 d");
    assert_eq!(
        read_words(&cpus[0], 0x10700, 9),
        l_acf.to_vec(),
        "stage0 acf"
    );
    // Stage 1 locals.
    assert_eq!(
        read_words(&cpus[1], 0x10700, 9),
        l_acf.to_vec(),
        "stage1 received acf"
    );
    assert_eq!(read_words(&cpus[1], 0x10400, 160), d.to_vec(), "stage1 d");
    assert_eq!(read_words(&cpus[1], 0x10740, 8), rc.to_vec(), "stage1 rc");
    assert_eq!(
        read_words(&cpus[1], 0x10780, 8),
        larq.to_vec(),
        "stage1 larq"
    );
    // Stage 2 locals: nc/bc per subframe.
    let ltp_words = read_words(&cpus[2], 0x107C0, 8);
    let want_ltp: Vec<i32> = frame
        .subs
        .iter()
        .flat_map(|sub| [sub.nc, sub.bc])
        .collect();
    assert_eq!(ltp_words, want_ltp, "stage2 ltp params");
    // Stage 3: last subframe's rpe output.
    let rpe = read_words(&cpus[3], 0x10B00, 15);
    let last = &frame.subs[3];
    assert_eq!(rpe[0], last.grid, "stage3 grid");
    assert_eq!(rpe[1], last.exp, "stage3 exp");
    assert_eq!(&rpe[2..15], &last.xmc, "stage3 xmc");

    // Full checksum.
    let backend = bus
        .backend(0)
        .as_any()
        .downcast_ref::<WrapperBackend>()
        .unwrap();
    let result = pipeline::extract_result(backend).expect("result block");
    assert_eq!(result.checksum, pipeline::expected_checksum(&cfg));
}
