//! The paper's evaluation workload, end to end: the GSM encoder pipeline
//! on 4 co-simulated ISSs exchanging frames through dynamic shared memory.
//! The pipeline's checksum must match the reference encoder bit-exactly.

use dmi_core::{WrapperBackend, WrapperConfig};
use dmi_gsm::pipeline::{self, PipelineCfg, RESULT_MAGIC};
use dmi_system::{mem_base, McSystem, MemModelKind, SystemConfig};

fn run_pipeline(n_frames: u32, n_mems: usize, seed: u32) -> (pipeline::PipelineResult, u64) {
    let cfg = PipelineCfg {
        n_frames,
        mem_bases: (0..n_mems).map(mem_base).collect(),
        seed,
    };
    let mut sys = McSystem::build(SystemConfig {
        programs: pipeline::stage_programs(&cfg),
        memories: vec![MemModelKind::Wrapper(WrapperConfig::default()); n_mems],
        ..SystemConfig::default()
    });
    let report = sys.run(2_000_000_000);
    assert!(report.all_ok(), "{}", report.summary());
    let module = sys.memory(0).expect("module 0");
    let backend = module
        .backend()
        .as_any()
        .downcast_ref::<WrapperBackend>()
        .expect("wrapper backend");
    let result = pipeline::extract_result(backend).expect("result block");
    (result, report.sim_cycles)
}

#[test]
fn pipeline_is_bit_exact_one_memory() {
    let cfg = PipelineCfg {
        n_frames: 3,
        mem_bases: vec![mem_base(0)],
        seed: 0xBEEF,
    };
    let (result, _) = run_pipeline(3, 1, 0xBEEF);
    assert_eq!(result.magic, RESULT_MAGIC);
    assert_eq!(result.frames, 3);
    assert_eq!(
        result.checksum,
        pipeline::expected_checksum(&cfg),
        "ISS pipeline output differs from the reference encoder"
    );
}

#[test]
fn pipeline_is_bit_exact_four_memories() {
    let cfg = PipelineCfg {
        n_frames: 3,
        mem_bases: (0..4).map(mem_base).collect(),
        seed: 0xBEEF,
    };
    let (result, _) = run_pipeline(3, 4, 0xBEEF);
    assert_eq!(result.magic, RESULT_MAGIC);
    assert_eq!(result.checksum, pipeline::expected_checksum(&cfg));
}

#[test]
fn headline_shape_four_memories_slower_than_one() {
    // The paper's Section 4 comparison: 4 ISSs + 1 memory vs 4 ISSs + 4
    // memories. More modules on the same bus mean more components to
    // evaluate each cycle, so *simulation speed* (host-side) degrades; the
    // simulated cycle count improves slightly (less module contention).
    let (_, cycles_1) = run_pipeline(2, 1, 7);
    let (_, cycles_4) = run_pipeline(2, 4, 7);
    // Functional outcome identical and both finished; cycle counts are in
    // the same ballpark (the pipeline serializes on frame handoffs).
    let ratio = cycles_4 as f64 / cycles_1 as f64;
    assert!(
        (0.5..2.0).contains(&ratio),
        "pipeline cycles diverged unexpectedly: 1-mem {cycles_1}, 4-mem {cycles_4}"
    );
}
