//! The paper's evaluation workload, end to end: the GSM encoder pipeline
//! on 4 co-simulated ISSs exchanging frames through dynamic shared memory.
//! The pipeline's checksum must match the reference encoder bit-exactly.

use dmi_core::{WrapperBackend, WrapperConfig};
use dmi_gsm::pipeline::{self, PipelineCfg, RESULT_MAGIC};
use dmi_system::{mem_base, McSystem, MemModelKind, SystemConfig};

fn run_pipeline(n_frames: u32, n_mems: usize, seed: u32) -> (pipeline::PipelineResult, u64) {
    let cfg = PipelineCfg {
        n_frames,
        mem_bases: (0..n_mems).map(mem_base).collect(),
        seed,
    };
    let mut sys = McSystem::build(SystemConfig {
        programs: pipeline::stage_programs(&cfg),
        memories: vec![MemModelKind::Wrapper(WrapperConfig::default()); n_mems],
        ..SystemConfig::default()
    });
    let report = sys.run(2_000_000_000);
    assert!(report.all_ok(), "{}", report.summary());
    let module = sys.memory(0).expect("module 0");
    let backend = module
        .backend()
        .as_any()
        .downcast_ref::<WrapperBackend>()
        .expect("wrapper backend");
    let result = pipeline::extract_result(backend).expect("result block");
    (result, report.sim_cycles)
}

#[test]
fn pipeline_is_bit_exact_one_memory() {
    let cfg = PipelineCfg {
        n_frames: 3,
        mem_bases: vec![mem_base(0)],
        seed: 0xBEEF,
    };
    let (result, _) = run_pipeline(3, 1, 0xBEEF);
    assert_eq!(result.magic, RESULT_MAGIC);
    assert_eq!(result.frames, 3);
    assert_eq!(
        result.checksum,
        pipeline::expected_checksum(&cfg),
        "ISS pipeline output differs from the reference encoder"
    );
}

#[test]
fn pipeline_is_bit_exact_four_memories() {
    let cfg = PipelineCfg {
        n_frames: 3,
        mem_bases: (0..4).map(mem_base).collect(),
        seed: 0xBEEF,
    };
    let (result, _) = run_pipeline(3, 4, 0xBEEF);
    assert_eq!(result.magic, RESULT_MAGIC);
    assert_eq!(result.checksum, pipeline::expected_checksum(&cfg));
}

#[test]
fn headline_shape_four_memories_slower_than_one() {
    // The paper's Section 4 comparison: 4 ISSs + 1 memory vs 4 ISSs + 4
    // memories. More modules on the same bus mean more components to
    // evaluate each cycle, so *simulation speed* (host-side) degrades; the
    // simulated cycle count improves slightly (less module contention).
    let (_, cycles_1) = run_pipeline(2, 1, 7);
    let (_, cycles_4) = run_pipeline(2, 4, 7);
    // Functional outcome identical and both finished; cycle counts are in
    // the same ballpark (the pipeline serializes on frame handoffs).
    let ratio = cycles_4 as f64 / cycles_1 as f64;
    assert!(
        (0.5..2.0).contains(&ratio),
        "pipeline cycles diverged unexpectedly: 1-mem {cycles_1}, 4-mem {cycles_4}"
    );
}

#[test]
fn headline_toggle_fast_path_coverage_is_total() {
    // The kernel's clocked fast paths must actually carry the headline
    // experiment: with the defaults on, *every* toggle dispatches from
    // the clock calendar (≥ 99 % asserted, 100 % expected) and every
    // falling half-period is a quiet in-place flip (all subscribers are
    // rising-edge), so quiet coverage sits at ~50 % of all toggles.
    // `RunReport::fast_path` is the per-run surfacing of those counters.
    // (The `DMI_CLOCK_CALENDAR=0` / `DMI_KERNEL_SPECIALIZE=0` CI jobs
    // run this suite too — pin both paths on explicitly.)
    let cfg = pipeline::PipelineCfg {
        n_frames: 1,
        mem_bases: vec![mem_base(0)],
        seed: 0x5EED,
    };
    let mut b = dmi_system::SystemBuilder::new().clock_calendar(true);
    for program in pipeline::stage_programs(&cfg) {
        b.add_cpu(dmi_system::CpuSpec::new(program));
    }
    b.add_memory(dmi_system::MemSpec::wrapper(mem_base(0)));
    let mut sys = b.build().expect("gsm pipeline system");
    sys.simulator_mut().set_clock_specialization(true);
    let report = sys.run(u64::MAX / 4);
    assert!(report.all_ok(), "{}", report.summary());
    let f = &report.fast_path;
    assert!(f.clock_toggles > 1000, "headline clocks for many cycles");
    assert!(
        f.calendar_coverage() >= 0.99,
        "calendar coverage below 99%: {}",
        report.kernel_summary()
    );
    assert!(
        f.quiet_coverage() >= 0.49,
        "quiet coverage below 49%: {}",
        report.kernel_summary()
    );
    // Combined fast-path coverage (quiet + calendar over 2× toggles
    // would double-count: a calendar toggle can also be quiet). The
    // experiment-facing guarantee is that virtually no toggle pays the
    // full queue-round-trip *and* commit-scan cost.
    assert!(
        f.calendar_coverage() + f.quiet_coverage() >= 1.48,
        "{}",
        report.kernel_summary()
    );
}
