//! The builder API contract:
//!
//! * the `SystemConfig` shim lowers onto `SystemBuilder` **cycle-bit-
//!   identically** (differential test on the GSM headline scenario);
//! * every `BuildError` variant is reachable and typed;
//! * non-CPU masters are first-class: a DMA-only system (zero CPUs)
//!   builds, runs and stops on its own completion;
//! * typed run control: watchpoints, no-progress detection, snapshots.

use dmi_core::WrapperConfig;
use dmi_gsm::pipeline::{self, PipelineCfg};
use dmi_masters::{BurstSpec, DmaConfig, DmaEngine, DmaKind};
use dmi_sw::{workloads, WorkloadCfg};
use dmi_system::{
    mem_base, BuildError, CpuSpec, InterconnectKind, McSystem, MemModelKind, MemSpec, Preset,
    RunReport, StopCause, StopCondition, SystemBuilder, SystemConfig, MEM_WINDOW,
};

/// The paper's headline scenario (GSM pipeline, 4 ISSs, 1 wrapper
/// memory) through the declarative shim.
fn gsm_via_shim(n_frames: u32) -> RunReport {
    let cfg = PipelineCfg {
        n_frames,
        mem_bases: vec![mem_base(0)],
        seed: 0x5EED,
    };
    let mut sys = McSystem::build(SystemConfig {
        programs: pipeline::stage_programs(&cfg),
        memories: vec![MemModelKind::Wrapper(WrapperConfig::default())],
        ..SystemConfig::default()
    });
    sys.run(u64::MAX / 4)
}

/// The same scenario hand-built on the composable builder.
fn gsm_via_builder(n_frames: u32) -> RunReport {
    let cfg = PipelineCfg {
        n_frames,
        mem_bases: vec![mem_base(0)],
        seed: 0x5EED,
    };
    let mut b = SystemBuilder::new();
    for program in pipeline::stage_programs(&cfg) {
        b.add_cpu(CpuSpec::new(program));
    }
    b.add_memory(MemSpec::wrapper(mem_base(0)));
    let mut sys = b.build().expect("valid system");
    sys.run(u64::MAX / 4)
}

#[test]
fn shim_and_builder_are_cycle_bit_identical_on_gsm_headline() {
    let a = gsm_via_shim(2);
    let b = gsm_via_builder(2);
    assert!(a.all_ok(), "{}", a.summary());
    assert!(b.all_ok(), "{}", b.summary());
    assert_eq!(a.sim_cycles, b.sim_cycles, "simulated cycle counts differ");
    assert_eq!(a.kernel.events, b.kernel.events, "kernel event counts differ");
    assert_eq!(a.kernel.deltas, b.kernel.deltas, "delta counts differ");
    assert_eq!(a.bus.transactions, b.bus.transactions);
    assert_eq!(a.bus.busy_cycles, b.bus.busy_cycles);
    for (i, (ca, cb)) in a.cpus.iter().zip(&b.cpus).enumerate() {
        assert_eq!(ca.isa.instructions, cb.isa.instructions, "cpu{i} instructions");
        assert_eq!(ca.cpu_cycles, cb.cpu_cycles, "cpu{i} cycles");
        assert_eq!(
            ca.cosim.bus_wait_cycles, cb.cosim.bus_wait_cycles,
            "cpu{i} bus waits"
        );
    }
}

#[test]
fn build_errors_are_typed() {
    // Empty system.
    assert!(matches!(
        SystemBuilder::new().build().unwrap_err(),
        BuildError::EmptySystem
    ));

    let wl = WorkloadCfg::default();
    let prog = workloads::alloc_churn(&wl);

    // No memories.
    let mut b = SystemBuilder::new();
    b.add_cpu(CpuSpec::new(prog.clone()));
    assert!(matches!(b.build().unwrap_err(), BuildError::NoMemories));

    // More than 16 masters.
    let mut b = SystemBuilder::new();
    b.add_memory(MemSpec::wrapper(mem_base(0)));
    for _ in 0..17 {
        b.add_cpu(CpuSpec::new(prog.clone()));
    }
    assert!(matches!(
        b.build().unwrap_err(),
        BuildError::TooManyMasters { count: 17 }
    ));

    // Bad clock period (odd, and below 2).
    for period in [3u64, 0] {
        let mut b = SystemBuilder::new().clock_period(period);
        b.add_cpu(CpuSpec::new(prog.clone()));
        b.add_memory(MemSpec::wrapper(mem_base(0)));
        assert!(matches!(
            b.build().unwrap_err(),
            BuildError::BadClockPeriod { .. }
        ));
    }

    // Program too large for its (per-CPU) local memory.
    let mut b = SystemBuilder::new();
    b.add_cpu(CpuSpec::new(prog.clone()).local_mem_size(16));
    b.add_memory(MemSpec::wrapper(mem_base(0)));
    let err = b.build().unwrap_err();
    assert!(
        matches!(err, BuildError::ProgramTooLarge { cpu: 0, have: 16, .. }),
        "{err}"
    );

    // Zero-sized window.
    let mut b = SystemBuilder::new();
    b.add_cpu(CpuSpec::new(prog.clone()));
    b.add_memory(MemSpec::wrapper(mem_base(0)).window(0));
    assert!(matches!(
        b.build().unwrap_err(),
        BuildError::ZeroWindow { .. }
    ));

    // Window wrapping the address space.
    let mut b = SystemBuilder::new();
    b.add_cpu(CpuSpec::new(prog.clone()));
    b.add_memory(MemSpec::wrapper(0xFFFF_0000).window(0x2_0000));
    assert!(matches!(
        b.build().unwrap_err(),
        BuildError::WindowWraps { .. }
    ));

    // Overlapping windows.
    let mut b = SystemBuilder::new();
    b.add_cpu(CpuSpec::new(prog));
    b.add_memory(MemSpec::wrapper(mem_base(0)));
    b.add_memory(MemSpec::wrapper(mem_base(0) + MEM_WINDOW / 2));
    let err = b.build().unwrap_err();
    assert!(
        matches!(err, BuildError::OverlappingWindows { .. }),
        "{err}"
    );
    assert!(err.to_string().contains("overlaps"));
}

#[test]
fn variable_window_sizes_validate_and_decode() {
    // A big window followed by a small one directly above it: legal under
    // explicit windows, impossible under the old fixed 64 KiB layout.
    let wl = WorkloadCfg {
        mem_base: 0x9000_0000,
        iterations: 4,
        ..WorkloadCfg::default()
    };
    let mut b = SystemBuilder::new();
    b.add_cpu(CpuSpec::new(workloads::alloc_churn(&wl)));
    let big = b.add_memory(MemSpec::wrapper(0x8000_0000).window(0x0100_0000));
    let small = b.add_memory(MemSpec::wrapper(0x9000_0000).window(0x1000));
    let mut sys = b.build().expect("non-overlapping windows are valid");
    assert_eq!(sys.mem_region(big).size, 0x0100_0000);
    assert_eq!(sys.mem_region(small).base, 0x9000_0000);
    let report = sys.run(50_000_000);
    assert!(report.all_ok(), "{}", report.summary());
    // The workload talked to the *small* window.
    assert!(report.mems[small.index()].backend.allocs > 0);
    assert_eq!(report.mems[big.index()].backend.allocs, 0);
}

#[test]
fn dma_only_system_builds_and_runs() {
    // Zero CPUs: two fill engines stressing one static memory.
    let mut b = SystemBuilder::new();
    let mem = b.add_memory(MemSpec::static_table(0x8000_0000));
    let d0 = b.add_master(Box::new(DmaEngine::new(DmaConfig {
        kind: DmaKind::Fill { seed: 0x1000 },
        dst: 0x8000_0000,
        words: 32,
        ..DmaConfig::default()
    })));
    let d1 = b.add_master(Box::new(DmaEngine::new(DmaConfig {
        kind: DmaKind::Fill { seed: 0x2000 },
        dst: 0x8000_0400,
        words: 32,
        ..DmaConfig::default()
    })));
    let mut sys = b.build().expect("CPU-less system is valid");
    assert_eq!(sys.cpu_count(), 0);
    assert_eq!(sys.master_count(), 2);

    let report = sys.run(1_000_000);
    assert!(report.finished, "{:?}", report.cause);
    assert_eq!(report.cause, StopCause::AllHalted);
    assert!(report.all_ok());
    assert_eq!(report.masters.len(), 2);
    for m in &report.masters {
        assert_eq!(m.kind, "dma");
        assert!(m.stats.done);
        assert_eq!(m.stats.transactions, 32);
    }
    assert_eq!(report.masters[0].name, "dma0");
    assert_eq!(report.masters[1].name, "dma1");
    assert_eq!(sys.master_stats(d0).transactions, 32);
    assert_eq!(sys.master_stats(d1).transactions, 32);
    // Both engines' patterns landed (mid-run observation hook, post-run).
    assert_eq!(sys.watch_value(mem, 0), Some(0x1000));
    assert_eq!(sys.watch_value(mem, 0x400), Some(0x2000));
    // The bus saw both masters.
    assert_eq!(report.bus.transactions, 64);
}

#[test]
fn cpus_and_dma_share_the_interconnect() {
    let wl = WorkloadCfg {
        mem_base: mem_base(0),
        iterations: 8,
        ..WorkloadCfg::default()
    };
    let mut b = SystemBuilder::new();
    b.add_memory(MemSpec::wrapper(mem_base(0)));
    let stress = b.add_memory(MemSpec::static_table(mem_base(1)));
    b.add_cpu(CpuSpec::new(workloads::alloc_churn(&wl)));
    b.add_master(Box::new(DmaEngine::new(DmaConfig {
        kind: DmaKind::Fill { seed: 7 },
        dst: mem_base(1),
        words: 64,
        passes: 4,
        ..DmaConfig::default()
    })));
    let mut sys = b.build().unwrap();
    let report = sys.run(50_000_000);
    assert!(report.all_ok(), "{}", report.summary());
    assert_eq!(report.cpus.len(), 1);
    assert_eq!(report.masters.len(), 1);
    assert!(report.masters[0].stats.bus_wait_cycles > 0 || report.bus.transactions > 0);
    assert_eq!(
        sys.watch_value(stress, 63 * 4),
        Some(DmaConfig::fill_word(7, 64, 3, 63))
    );
}

#[test]
fn watchpoint_stops_mid_run() {
    // A DMA fill marches through a static memory; watch for the moment a
    // late word appears, well before the engine finishes all passes.
    let mut b = SystemBuilder::new();
    let mem = b.add_memory(MemSpec::static_table(0x8000_0000));
    b.add_master(Box::new(DmaEngine::new(DmaConfig {
        kind: DmaKind::Fill { seed: 0xAA00 },
        dst: 0x8000_0000,
        words: 256,
        passes: 64,
        ..DmaConfig::default()
    })));
    let mut sys = b.build().unwrap();
    let watched = DmaConfig::fill_word(0xAA00, 256, 0, 128);
    let cond = StopCondition::watch_word(mem, 128 * 4, watched)
        .or(StopCondition::cycles(10_000_000))
        .poll_every(64);
    let report = sys.run_until(&cond);
    assert_eq!(report.cause, StopCause::Watchpoint(0), "{}", report.summary());
    assert!(!report.finished);
    assert_eq!(sys.watch_value(mem, 128 * 4), Some(watched));
    // Resume to completion: the same system keeps running.
    let rest = sys.run_until(&StopCondition::cycles(50_000_000));
    assert_eq!(rest.cause, StopCause::AllHalted);
    assert!(rest.masters[0].stats.done);
}

#[test]
fn watchpoint_inspects_simheap_memories() {
    // Regression for the ROADMAP open item: `watch_word` on SimHeap
    // systems used to return `None` forever (no inspection path into the
    // simulated arena) so watchpoints could never fire. A scalar_rw
    // workload writes its iteration counter (counting down) into the
    // first allocation, whose vptr is the arena offset 4 (first-fit from
    // the arena base, payload after the boundary tag).
    let wl = WorkloadCfg::at(mem_base(0)).iterations(100).buf_words(1);
    let mut b = SystemBuilder::new();
    let mem = b.add_memory(MemSpec::simheap(mem_base(0)));
    b.add_cpu(CpuSpec::new(workloads::scalar_rw(&wl)));
    let mut sys = b.build().unwrap();

    let cond = StopCondition::watch_word(mem, 4, 50)
        .or(StopCondition::cycles(50_000_000))
        .poll_every(16);
    let report = sys.run_until(&cond);
    assert_eq!(report.cause, StopCause::Watchpoint(0), "{}", report.summary());
    assert!(!report.finished);
    assert_eq!(sys.watch_value(mem, 4), Some(50));

    // Resume to completion: the loop counts down to 1.
    let rest = sys.run_until(&StopCondition::cycles(100_000_000));
    assert_eq!(rest.cause, StopCause::AllHalted, "{}", rest.summary());
    assert!(rest.all_ok());
    assert_eq!(sys.watch_value(mem, 4), Some(1));
    // Out-of-arena locations still observe nothing.
    assert_eq!(sys.watch_value(mem, 0xFFFF_FFF0), None);
}

#[test]
fn no_progress_detects_an_idle_system() {
    // A throttled DMA: after its first transfer it sits idle for far
    // longer than the no-progress window.
    let mut b = SystemBuilder::new();
    b.add_memory(MemSpec::static_table(0x8000_0000));
    b.add_master(Box::new(DmaEngine::new(DmaConfig {
        kind: DmaKind::Fill { seed: 1 },
        dst: 0x8000_0000,
        words: 2,
        gap_cycles: 1_000_000,
        ..DmaConfig::default()
    })));
    let mut sys = b.build().unwrap();
    let report = sys.run_until(
        &StopCondition::no_progress(2_000)
            .or(StopCondition::cycles(100_000))
            .poll_every(128),
    );
    assert_eq!(report.cause, StopCause::NoProgress, "{}", report.summary());
    assert!(!report.finished);
}

#[test]
fn report_now_observes_without_advancing() {
    let wl = WorkloadCfg {
        mem_base: mem_base(0),
        iterations: 50,
        ..WorkloadCfg::default()
    };
    let mut sys = McSystem::build(SystemConfig {
        programs: vec![workloads::alloc_churn(&wl)],
        ..SystemConfig::default()
    });
    let mid = sys.run_until(&StopCondition::cycles(5_000));
    assert_eq!(mid.cause, StopCause::CycleBudget);
    let snap = sys.report_now();
    assert_eq!(snap.sim_cycles, mid.sim_cycles, "snapshot does not advance");
    assert_eq!(
        snap.cpus[0].isa.instructions,
        mid.cpus[0].isa.instructions
    );
    let snap2 = sys.report_now();
    assert_eq!(snap2.sim_cycles, snap.sim_cycles);
    // Finish the workload; per-epoch cycles restart with the new call.
    let done = sys.run_until(&StopCondition::all_halted().or(StopCondition::cycles(
        100_000_000,
    )));
    assert_eq!(done.cause, StopCause::AllHalted);
    assert!(done.all_ok());
    assert!(
        done.cpus[0].isa.instructions > mid.cpus[0].isa.instructions,
        "component counters are cumulative"
    );
    // A snapshot taken after completion reflects the live halted state.
    let final_snap = sys.report_now();
    assert_eq!(final_snap.cause, StopCause::AllHalted);
    assert!(final_snap.all_ok(), "post-completion snapshot is all_ok");
}

#[test]
fn presets_toggle_grant_retention() {
    let wl = WorkloadCfg {
        mem_base: mem_base(0),
        iterations: 8,
        burst_len: 32,
        ..WorkloadCfg::default()
    };
    let run_with = |preset| {
        let mut b = SystemBuilder::new().preset(preset);
        b.add_memory(MemSpec::wrapper(mem_base(0)));
        b.add_cpu(CpuSpec::new(workloads::burst_copy(&wl)));
        let mut sys = b.build().unwrap();
        sys.run(u64::MAX / 4)
    };
    let seed = run_with(Preset::SeedTiming);
    let thr = run_with(Preset::Throughput);
    assert!(seed.all_ok() && thr.all_ok());
    assert_eq!(seed.bus.retained_grants, 0, "seed timing retains nothing");
    assert!(thr.bus.retained_grants > 0, "throughput preset retains grants");
    assert!(
        thr.sim_cycles < seed.sim_cycles,
        "retention saves simulated cycles: {} vs {}",
        thr.sim_cycles,
        seed.sim_cycles
    );
    // Seed timing is the default (no preset = same cycles).
    let mut b = SystemBuilder::new();
    b.add_memory(MemSpec::wrapper(mem_base(0)));
    b.add_cpu(CpuSpec::new(workloads::burst_copy(&wl)));
    let default_run = b.build().unwrap().run(u64::MAX / 4);
    assert_eq!(default_run.sim_cycles, seed.sim_cycles);
}

#[test]
fn burst_dma_exercises_the_io_array_path_under_both_presets() {
    // Two burst-mode fill engines allocate their own blocks in one
    // wrapper memory and stream them through WriteBurst/ReadBurst DATA
    // beats — the slave-side banked I/O arrays — with self-verification.
    let run_with = |preset, engines: u32| {
        let mut b = SystemBuilder::new().preset(preset);
        let mem = b.add_memory(MemSpec::wrapper(mem_base(0)));
        for i in 0..engines {
            b.add_master(Box::new(DmaEngine::new(DmaConfig {
                kind: DmaKind::Fill { seed: 0x1000 * (i + 1) },
                dst: mem_base(0),
                words: 64,
                passes: 2,
                burst: Some(BurstSpec {
                    beats: 16,
                    verify: true,
                    at: None,
                }),
                ..DmaConfig::default()
            })));
        }
        let mut sys = b.build().unwrap();
        let report = sys.run(10_000_000);
        (report, sys, mem)
    };
    let (seed, seed_sys, seed_mem) = run_with(Preset::SeedTiming, 2);
    let (thr, _, _) = run_with(Preset::Throughput, 2);
    for r in [&seed, &thr] {
        assert!(r.all_ok(), "{}", r.summary());
        for m in &r.masters {
            assert!(m.stats.done);
            assert!(m.stats.transactions > 64, "MMIO dialogue, not scalar stores");
        }
        // Both engines' payloads crossed the banked I/O arrays:
        // 2 x (128 write beats + 64 verify read beats).
        assert_eq!(r.mems[0].backend.burst_beats, 2 * 192);
        assert_eq!(r.mems[0].backend.allocs, 2);
    }
    assert_eq!(seed.bus.retained_grants, 0);
    // With two contending masters the arbiter alternates grants, so
    // retention shows on a solo engine's uncontended MMIO stream.
    let (thr_solo, _, _) = run_with(Preset::Throughput, 1);
    assert!(
        thr_solo.bus.retained_grants > 0,
        "retention engages on MMIO streams"
    );
    // The engines allocated consecutive wrapper vptrs (0, then 64 words):
    // the final pass's pattern is observable through the watch hook.
    assert_eq!(
        seed_sys.watch_value(seed_mem, 0),
        Some(DmaConfig::fill_word(0x1000, 64, 1, 0))
    );
    assert_eq!(
        seed_sys.watch_value(seed_mem, 64 * 4),
        Some(DmaConfig::fill_word(0x2000, 64, 1, 0))
    );
}

#[test]
fn crossbar_preset_applies_too() {
    let wl = WorkloadCfg {
        mem_base: mem_base(0),
        iterations: 4,
        burst_len: 16,
        ..WorkloadCfg::default()
    };
    let mut b = SystemBuilder::new()
        .interconnect(InterconnectKind::Crossbar(dmi_interconnect_crossbar_cfg()))
        .preset(Preset::Throughput);
    b.add_memory(MemSpec::wrapper(mem_base(0)));
    b.add_cpu(CpuSpec::new(workloads::burst_copy(&wl)));
    let mut sys = b.build().unwrap();
    let r = sys.run(u64::MAX / 4);
    assert!(r.all_ok());
    assert!(r.bus.retained_grants > 0);
}

/// Crossbar config with a nonzero arbitration latency, so grant
/// retention has a phase to skip.
fn dmi_interconnect_crossbar_cfg() -> dmi_interconnect::CrossbarConfig {
    dmi_interconnect::CrossbarConfig {
        arbitration_latency: 1,
        ..Default::default()
    }
}

#[test]
fn burst_dma_drives_static_protocol_through_the_builder() {
    // Closes the PR 4 open item: the protocol-speaking static table
    // (`StaticTableBackend` behind a `MemoryModule`) is a `MemSpec`
    // variant, so a burst DMA can stream the traditional baseline's
    // banked I/O arrays without the manual wiring the `dmi-masters`
    // tests used. The baseline has no ALLOC, so the engine streams at a
    // fixed table offset (`BurstSpec::at`; on this model a vptr *is* a
    // byte offset) — write passes plus a read-back verify pass.
    let mut b = SystemBuilder::new();
    let mem = b.add_memory(MemSpec::static_protocol(mem_base(0)));
    b.add_master(Box::new(DmaEngine::new(DmaConfig {
        kind: DmaKind::Fill { seed: 0x5A00 },
        dst: mem_base(0),
        words: 32,
        passes: 2,
        burst: Some(BurstSpec {
            beats: 8,
            verify: true,
            at: Some(0x40),
        }),
        ..DmaConfig::default()
    })));
    let mut sys = b.build().unwrap();
    let report = sys.run(1_000_000);
    assert!(report.all_ok(), "{}", report.summary());
    assert_eq!(report.mems[0].kind, "static-protocol");
    // The payload went through the slave-side banked I/O arrays:
    // 2 × 32 write beats plus 32 verify read beats, zero mismatches.
    assert_eq!(report.mems[0].backend.burst_beats, 96);
    assert_eq!(report.mems[0].backend.errors, 0);
    // …and the final pass's pattern is observable through the same
    // watch hook as the other protocol models (location = byte offset
    // into the table).
    assert_eq!(
        sys.watch_value(mem, 0x40 + 31 * 4),
        Some(DmaConfig::fill_word(0x5A00, 32, 1, 31))
    );
    assert_eq!(sys.watch_value(mem, 0xFFFF_FFF0), None, "out of bounds");
}

#[test]
fn burst_dma_against_static_protocol_reports_the_baseline_limit() {
    // Burst engines self-ALLOC their block; the static baseline answers
    // allocation commands `Unsupported` *by design* (that limitation is
    // the paper's starting point). Through the builder, the engine must
    // retire with a protocol error instead of hanging — the same
    // contract `crates/masters` pinned with manual wiring.
    let mut b = SystemBuilder::new();
    b.add_memory(MemSpec::static_protocol(mem_base(0)));
    let dma = b.add_master(Box::new(DmaEngine::new(DmaConfig {
        kind: DmaKind::Fill { seed: 1 },
        dst: mem_base(0),
        words: 8,
        burst: Some(BurstSpec::default()),
        ..DmaConfig::default()
    })));
    let mut sys = b.build().unwrap();
    let report = sys.run(1_000_000);
    let stats = sys.master_stats(dma);
    assert!(stats.done, "engine retires instead of hanging");
    assert_eq!(report.mems[0].backend.errors, 1, "the rejected ALLOC");
    assert_eq!(report.mems[0].backend.burst_beats, 0, "no payload moved");
}

#[test]
fn fast_path_counters_surface_in_reports() {
    // The PR 4/PR 5 fast-path counters (quiet flips, calendar
    // dispatches) come back per run through `RunReport::fast_path`, and
    // the calendar A/B knob changes *only* host-side behaviour: same
    // cycles, same `KernelStats`, different serving path.
    let run_with = |calendar: bool| {
        let wl = WorkloadCfg::at(mem_base(0)).iterations(8);
        let mut b = SystemBuilder::new().clock_calendar(calendar);
        b.add_memory(MemSpec::wrapper(mem_base(0)));
        b.add_cpu(CpuSpec::new(workloads::scalar_rw(&wl)));
        let mut sys = b.build().unwrap();
        let r = sys.run(10_000_000);
        assert!(r.all_ok(), "{}", r.summary());
        r
    };
    let on = run_with(true);
    let off = run_with(false);
    assert_eq!(on.sim_cycles, off.sim_cycles, "bit-identical simulation");
    assert_eq!(on.kernel, off.kernel);
    assert_eq!(on.fast_path.clock_toggles, off.fast_path.clock_toggles);
    assert!(on.fast_path.clock_toggles > 0);
    assert_eq!(
        on.fast_path.calendar_toggles, on.fast_path.clock_toggles,
        "calendar serves every toggle when on"
    );
    assert_eq!(off.fast_path.calendar_toggles, 0);
    assert_eq!(on.fast_path.quiet_toggles, off.fast_path.quiet_toggles);
    assert!(on.kernel_summary().contains("toggles"), "{}", on.kernel_summary());

    // Snapshots report the same epoch deltas.
    let wl = WorkloadCfg::at(mem_base(0)).iterations(4);
    let mut b = SystemBuilder::new();
    b.add_memory(MemSpec::wrapper(mem_base(0)));
    b.add_cpu(CpuSpec::new(workloads::scalar_rw(&wl)));
    let mut sys = b.build().unwrap();
    let r = sys.run(10_000_000);
    let snap = sys.report_now();
    assert_eq!(snap.fast_path, r.fast_path);
}

#[test]
fn hung_scenario_watchdog_fires_within_one_poll_slice() {
    // A scenario that never halts (a DMA fill with a u32::MAX pass
    // budget), guarded by an explicit-granularity wall-clock watchdog:
    // the run must come back with StopCause::WallClock, must land on a
    // poll-slice boundary (the documented quantisation), and must stop
    // far below the cycle budget.
    use std::time::Duration;

    let mut b = SystemBuilder::new();
    b.add_memory(MemSpec::wrapper(mem_base(0)));
    b.add_master(Box::new(DmaEngine::new(DmaConfig {
        kind: DmaKind::Fill { seed: 9 },
        dst: mem_base(0),
        words: 8,
        passes: u32::MAX,
        ..DmaConfig::default()
    })));
    let mut sys = b.build().expect("hung system builds");

    let poll = 64;
    let budget = Duration::from_millis(50);
    // Timing the watchdog requires reading the wall.
    #[allow(clippy::disallowed_methods)]
    let t0 = std::time::Instant::now();
    let cond = StopCondition::cycles(u64::MAX / 4)
        .or(StopCondition::wall_clock_every(budget, poll));
    let r = sys.run_until(&cond);
    assert_eq!(r.cause, StopCause::WallClock, "{}", r.summary());
    assert!(!r.finished);
    assert!(t0.elapsed() >= budget, "stopped before the deadline");
    assert_eq!(
        r.sim_cycles % poll,
        0,
        "wall-clock stop must land on a poll boundary ({} cycles, poll {poll})",
        r.sim_cycles
    );
    assert!(
        r.sim_cycles < u64::MAX / 8,
        "watchdog, not the cycle budget, must have ended the run"
    );
}
