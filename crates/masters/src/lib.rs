//! # dmi-masters — non-CPU bus masters
//!
//! Design-space exploration needs traffic on the interconnect that does
//! not come from an ISS: DMA block movers, fill engines, synthetic
//! traffic generators. This crate provides such components behind the
//! [`BusMaster`](dmi_interconnect::BusMaster) registration trait, so a
//! system builder can wire them exactly like CPUs.
//!
//! The first citizen is [`DmaEngine`]: a programmable block copy/fill
//! engine speaking the standard master handshake, word transfers with a
//! configurable stride, pass count and inter-transfer gap. It stresses
//! arbitration and memory models without any instruction stream — a
//! system of only DMA engines is a pure interconnect benchmark. With a
//! [`BurstSpec`] a fill engine instead drives a protocol memory's
//! register block (`ALLOC`, `WriteBurst`/`ReadBurst`, streamed `DATA`
//! beats), pushing its payload through the slave-side banked I/O arrays.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dma;

pub use dma::{BurstSpec, DmaComponent, DmaConfig, DmaEngine, DmaKind, DmaStats, RetryPolicy};
