//! The DMA engine: a programmable block copy/fill bus master.
//!
//! One transfer is one word-sized bus transaction (the handshake of
//! `dmi-iss`'s CPU masters: raise `req` with stable payload, hold until
//! `ack`, drop `req` for at least one cycle). A *copy* moves each word
//! with a read transaction followed by a write; a *fill* writes a
//! deterministic pattern. The engine runs `passes` passes over the block
//! and can insert idle cycles between transfers to model a throttled or
//! bursty requester.

use std::any::Any;

use dmi_interconnect::{BusMaster, MasterProbe, MasterStats, MasterWiring};
use dmi_kernel::{Component, Ctx, Wake};

/// What the engine does with each word of the block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaKind {
    /// Read `src + i·stride`, then write the data to `dst + i·stride`.
    Copy {
        /// Source byte address of word 0.
        src: u32,
    },
    /// Write `seed + pass·words + i` to `dst + i·stride` (self-describing
    /// pattern: a checker can recompute every expected word).
    Fill {
        /// First pattern word.
        seed: u32,
    },
}

/// Programming of a [`DmaEngine`].
#[derive(Debug, Clone, Copy)]
pub struct DmaConfig {
    /// Transfer kind (copy or pattern fill).
    pub kind: DmaKind,
    /// Destination byte address of word 0.
    pub dst: u32,
    /// Words per pass.
    pub words: u32,
    /// Byte stride between consecutive words (normally 4).
    pub stride: u32,
    /// Passes over the block before raising `done`.
    pub passes: u32,
    /// Idle cycles inserted between transfers (0 = back-to-back, which
    /// still leaves the mandatory one low-`req` cycle between
    /// transactions).
    pub gap_cycles: u32,
}

impl Default for DmaConfig {
    fn default() -> Self {
        DmaConfig {
            kind: DmaKind::Fill { seed: 0 },
            dst: 0x8000_0000,
            words: 16,
            stride: 4,
            passes: 1,
            gap_cycles: 0,
        }
    }
}

impl DmaConfig {
    /// The pattern word a [`DmaKind::Fill`] engine writes at (`pass`,
    /// `word`) — what a checker should expect to find at
    /// `dst + word·stride` after the final pass.
    pub fn fill_word(seed: u32, words: u32, pass: u32, word: u32) -> u32 {
        seed.wrapping_add(pass.wrapping_mul(words)).wrapping_add(word)
    }
}

/// Execution counters of a DMA component.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DmaStats {
    /// Rising clock edges observed while not done.
    pub active_cycles: u64,
    /// Edges spent with `req` high and no `ack`.
    pub bus_wait_cycles: u64,
    /// Completed bus transactions (a copy costs two per word).
    pub transactions: u64,
    /// Words fully transferred.
    pub words_done: u64,
    /// Whether the engine has raised `done`.
    pub done: bool,
}

/// The [`BusMaster`] specification for a DMA engine.
#[derive(Debug, Clone, Copy)]
pub struct DmaEngine {
    config: DmaConfig,
}

impl DmaEngine {
    /// Creates an engine specification.
    pub fn new(config: DmaConfig) -> Self {
        DmaEngine { config }
    }

    /// The programmed configuration.
    pub fn config(&self) -> &DmaConfig {
        &self.config
    }
}

impl BusMaster for DmaEngine {
    fn kind(&self) -> &'static str {
        "dma"
    }

    fn probe(&self) -> MasterProbe {
        |any| {
            any.downcast_ref::<DmaComponent>().map(|c| {
                let s = c.stats();
                MasterStats {
                    active_cycles: s.active_cycles,
                    bus_wait_cycles: s.bus_wait_cycles,
                    transactions: s.transactions,
                    done: s.done,
                }
            })
        }
    }

    fn into_component(self: Box<Self>, name: String, wiring: MasterWiring) -> Box<dyn Component> {
        Box::new(DmaComponent::new(name, self.config, wiring))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Idle for `0..=n` more edges, then issue the current transfer.
    Gap(u32),
    /// Request on the wires, waiting for acknowledge.
    WaitAck,
    /// All passes complete, `done` driven.
    Finished,
}

/// The kernel component executing a [`DmaConfig`]. Built via
/// [`DmaEngine`]'s [`BusMaster`] impl; subscribe it to the clock's rising
/// edge.
#[derive(Debug)]
pub struct DmaComponent {
    name: String,
    config: DmaConfig,
    wiring: MasterWiring,
    phase: Phase,
    /// Current pass (0-based).
    pass: u32,
    /// Current word within the pass.
    word: u32,
    /// For copies: `false` = read transaction, `true` = write-back.
    writeback: bool,
    /// Data captured by the read half of a copy.
    captured: u32,
    stats: DmaStats,
}

impl DmaComponent {
    /// Creates the component (normally done by the builder through
    /// [`BusMaster::into_component`]).
    pub fn new(name: impl Into<String>, config: DmaConfig, wiring: MasterWiring) -> Self {
        DmaComponent {
            name: name.into(),
            config,
            wiring,
            phase: Phase::Gap(0),
            pass: 0,
            word: 0,
            writeback: false,
            captured: 0,
            stats: DmaStats::default(),
        }
    }

    /// Execution counters.
    pub fn stats(&self) -> DmaStats {
        self.stats
    }

    /// Whether all programmed passes have completed.
    pub fn is_done(&self) -> bool {
        self.stats.done
    }

    fn offset(&self) -> u32 {
        self.word.wrapping_mul(self.config.stride)
    }

    /// The bus operation of the current transfer: `(addr, we, wdata)`.
    fn current_op(&self) -> (u32, bool, u32) {
        let off = self.offset();
        match self.config.kind {
            DmaKind::Copy { src } if !self.writeback => (src.wrapping_add(off), false, 0),
            DmaKind::Copy { .. } => (self.config.dst.wrapping_add(off), true, self.captured),
            DmaKind::Fill { seed } => (
                self.config.dst.wrapping_add(off),
                true,
                DmaConfig::fill_word(seed, self.config.words, self.pass, self.word),
            ),
        }
    }

    fn issue(&mut self, ctx: &mut Ctx<'_>) {
        let (addr, we, wdata) = self.current_op();
        let p = self.wiring.ports;
        ctx.write_bit(p.req, true);
        ctx.write_bit(p.we, we);
        ctx.write(p.size, 2); // word transfers
        ctx.write(p.addr, addr as u64);
        ctx.write(p.wdata, wdata as u64);
        self.phase = Phase::WaitAck;
    }

    fn finish(&mut self, ctx: &mut Ctx<'_>) {
        ctx.write_bit(self.wiring.done, true);
        self.stats.done = true;
        self.phase = Phase::Finished;
    }

    /// Advances to the next transfer after an acknowledged transaction.
    fn advance(&mut self, ctx: &mut Ctx<'_>) {
        self.stats.transactions += 1;
        let word_complete = match self.config.kind {
            DmaKind::Copy { .. } if !self.writeback => {
                self.writeback = true;
                false
            }
            _ => {
                self.writeback = false;
                true
            }
        };
        if word_complete {
            self.stats.words_done += 1;
            self.word += 1;
            if self.word >= self.config.words {
                self.word = 0;
                self.pass += 1;
                if self.pass >= self.config.passes {
                    self.finish(ctx);
                    return;
                }
            }
        }
        self.phase = Phase::Gap(self.config.gap_cycles);
    }
}

impl Component for DmaComponent {
    fn name(&self) -> &str {
        &self.name
    }

    fn wake(&mut self, ctx: &mut Ctx<'_>) {
        match ctx.cause() {
            Wake::Start => {
                let p = self.wiring.ports;
                ctx.write_bit(p.req, false);
                ctx.write_bit(p.we, false);
                ctx.write(p.size, 0);
                ctx.write(p.addr, 0);
                ctx.write(p.wdata, 0);
                ctx.write_bit(self.wiring.done, false);
            }
            Wake::Signal(_) if ctx.is_signal(self.wiring.clk) => {
                if self.phase == Phase::Finished {
                    return;
                }
                self.stats.active_cycles += 1;
                match self.phase {
                    Phase::Gap(0) => {
                        // Nothing programmed at all: raise done and rest.
                        if self.config.words == 0 || self.config.passes == 0 {
                            self.finish(ctx);
                        } else {
                            self.issue(ctx);
                        }
                    }
                    Phase::Gap(n) => self.phase = Phase::Gap(n - 1),
                    Phase::WaitAck => {
                        let p = self.wiring.ports;
                        if ctx.read_bit(p.ack) {
                            self.captured = ctx.read(p.rdata) as u32;
                            ctx.write_bit(p.req, false);
                            self.advance(ctx);
                        } else {
                            self.stats.bus_wait_cycles += 1;
                        }
                    }
                    Phase::Finished => unreachable!(),
                }
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmi_core::{SlavePorts, StaticMemConfig, StaticTableMemory};
    use dmi_interconnect::{
        AddressMap, BusConfig, MasterIf, SharedBus, SlaveIf,
    };
    use dmi_kernel::{Edge, Simulator};

    /// Wires one DMA engine and one static memory on a shared bus.
    fn build(config: DmaConfig) -> (Simulator, dmi_kernel::ComponentId, dmi_kernel::ComponentId) {
        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", 2);

        let ports = MasterIf::declare(&mut sim, "dma0.bus");
        let done = sim.wire("dma0.done", 1);
        let spec: Box<dyn BusMaster> = Box::new(DmaEngine::new(config));
        let comp = spec.into_component(
            "dma0".into(),
            MasterWiring {
                clk,
                ports,
                done,
            },
        );
        let dma_id = sim.add_component(comp);
        sim.subscribe(dma_id, clk, Edge::Rising);

        let sports = SlavePorts::declare(&mut sim, "mem0.s");
        let mem_id = sim.add_component(Box::new(StaticTableMemory::new(
            "mem0",
            clk,
            sports,
            0x8000_0000,
            StaticMemConfig {
                capacity: 0x1000,
                ..StaticMemConfig::default()
            },
        )));
        sim.subscribe(mem_id, clk, Edge::Rising);

        let mut map = AddressMap::new();
        map.add(0x8000_0000, 0x1000, 0);
        let bus = SharedBus::new(
            "bus",
            clk,
            vec![ports],
            vec![SlaveIf {
                req: sports.req,
                we: sports.we,
                size: sports.size,
                addr: sports.addr,
                wdata: sports.wdata,
                master: sports.master,
                ack: sports.ack,
                rdata: sports.rdata,
            }],
            map,
            BusConfig::default(),
        );
        let bus_id = sim.add_component(Box::new(bus));
        sim.subscribe(bus_id, clk, Edge::Rising);
        (sim, dma_id, mem_id)
    }

    fn mem_word(sim: &Simulator, id: dmi_kernel::ComponentId, off: usize) -> u32 {
        let m: &StaticTableMemory = sim.component(id).unwrap();
        u32::from_le_bytes(m.bytes()[off..off + 4].try_into().unwrap())
    }

    #[test]
    fn fill_writes_the_pattern() {
        let cfg = DmaConfig {
            kind: DmaKind::Fill { seed: 0x100 },
            dst: 0x8000_0000,
            words: 8,
            passes: 2,
            ..DmaConfig::default()
        };
        let (mut sim, dma_id, mem_id) = build(cfg);
        sim.run_for(10_000);
        let dma: &DmaComponent = sim.component(dma_id).unwrap();
        assert!(dma.is_done());
        assert_eq!(dma.stats().words_done, 16, "8 words x 2 passes");
        assert_eq!(dma.stats().transactions, 16);
        for i in 0..8u32 {
            // The last pass (pass 1) wins.
            assert_eq!(
                mem_word(&sim, mem_id, (i * 4) as usize),
                DmaConfig::fill_word(0x100, 8, 1, i),
                "word {i}"
            );
        }
    }

    #[test]
    fn copy_moves_a_block() {
        // Fill the source region first, then copy it.
        let fill = DmaConfig {
            kind: DmaKind::Fill { seed: 0xABC0 },
            dst: 0x8000_0000,
            words: 4,
            ..DmaConfig::default()
        };
        let (mut sim, _, mem_id) = build(fill);
        sim.run_for(10_000);
        // Second system: copy within the same memory image is simpler to
        // set up as its own run; emulate by re-filling then copying via a
        // fresh system whose source was pre-filled through the same DMA
        // path. Here: copy from the filled region to a disjoint one.
        let copy = DmaConfig {
            kind: DmaKind::Copy { src: 0x8000_0000 },
            dst: 0x8000_0100,
            words: 4,
            ..DmaConfig::default()
        };
        // Chain: run the copy against the already-filled memory by reusing
        // the simulator is not possible (new wires needed), so verify the
        // copy end-to-end in one system with both engines instead.
        drop(sim);
        let _ = mem_id;

        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", 2);
        let mut masters = Vec::new();
        let mut ids = Vec::new();
        for (i, cfg) in [fill, copy].into_iter().enumerate() {
            let ports = MasterIf::declare(&mut sim, &format!("dma{i}.bus"));
            let done = sim.wire(format!("dma{i}.done"), 1);
            // Stagger the copy far enough behind the fill that the source
            // block is complete before the first copy read (fill takes
            // ~6 cycles/word here; 200 cycles is conservative).
            let cfg = if i == 1 {
                DmaConfig {
                    gap_cycles: 0,
                    ..cfg
                }
            } else {
                cfg
            };
            let mut comp = DmaComponent::new(
                format!("dma{i}"),
                cfg,
                MasterWiring { clk, ports, done },
            );
            if i == 1 {
                comp.phase = Phase::Gap(200);
            }
            let id = sim.add_component(Box::new(comp));
            sim.subscribe(id, clk, Edge::Rising);
            ids.push(id);
            masters.push(ports);
        }
        let sports = SlavePorts::declare(&mut sim, "mem0.s");
        let mem_id = sim.add_component(Box::new(StaticTableMemory::new(
            "mem0",
            clk,
            sports,
            0x8000_0000,
            StaticMemConfig {
                capacity: 0x1000,
                ..StaticMemConfig::default()
            },
        )));
        sim.subscribe(mem_id, clk, Edge::Rising);
        let mut map = AddressMap::new();
        map.add(0x8000_0000, 0x1000, 0);
        let bus_id = sim.add_component(Box::new(SharedBus::new(
            "bus",
            clk,
            masters,
            vec![SlaveIf {
                req: sports.req,
                we: sports.we,
                size: sports.size,
                addr: sports.addr,
                wdata: sports.wdata,
                master: sports.master,
                ack: sports.ack,
                rdata: sports.rdata,
            }],
            map,
            BusConfig::default(),
        )));
        sim.subscribe(bus_id, clk, Edge::Rising);

        sim.run_for(20_000);
        for id in &ids {
            let d: &DmaComponent = sim.component(*id).unwrap();
            assert!(d.is_done(), "{} incomplete: {:?}", sim.component_name(*id), d.stats());
        }
        let copy_stats = sim.component::<DmaComponent>(ids[1]).unwrap().stats();
        assert_eq!(copy_stats.transactions, 8, "copy = read + write per word");
        for i in 0..4u32 {
            assert_eq!(
                mem_word(&sim, mem_id, (0x100 + i * 4) as usize),
                DmaConfig::fill_word(0xABC0, 4, 0, i),
                "copied word {i}"
            );
        }
    }

    #[test]
    fn zero_length_program_finishes_immediately() {
        let cfg = DmaConfig {
            words: 0,
            ..DmaConfig::default()
        };
        let (mut sim, dma_id, _) = build(cfg);
        sim.run_for(100);
        let dma: &DmaComponent = sim.component(dma_id).unwrap();
        assert!(dma.is_done());
        assert_eq!(dma.stats().transactions, 0);
    }

    #[test]
    fn probe_recovers_master_stats() {
        let spec = DmaEngine::new(DmaConfig::default());
        let probe = spec.probe();
        let (mut sim, dma_id, _) = build(DmaConfig::default());
        sim.run_for(10_000);
        let dma: &DmaComponent = sim.component(dma_id).unwrap();
        let stats = probe(dma.as_any()).expect("probe hits DmaComponent");
        assert!(stats.done);
        assert_eq!(stats.transactions, 16);
        assert!(probe(&0u32 as &dyn Any).is_none());
    }
}
