//! The DMA engine: a programmable block copy/fill bus master.
//!
//! One transfer is one word-sized bus transaction (the handshake of
//! `dmi-iss`'s CPU masters: raise `req` with stable payload, hold until
//! `ack`, drop `req` for at least one cycle). A *copy* moves each word
//! with a read transaction followed by a write; a *fill* writes a
//! deterministic pattern. The engine runs `passes` passes over the block
//! and can insert idle cycles between transfers to model a throttled or
//! bursty requester.
//!
//! ## Burst mode
//!
//! A fill engine programmed with a [`BurstSpec`] stops scattering scalar
//! stores and instead drives a protocol memory's MMIO register block —
//! the same command protocol the ISS-side driver speaks: it allocates
//! its own block (`ALLOC`), then streams each pass as `WriteBurst`
//! commands followed by chunked `DATA` beats, exercising the slave-side
//! banked I/O arrays (`DsmBackend::burst_write_beat` and friends) that
//! scalar masters never touch. With [`BurstSpec::verify`] the engine
//! reads the block back over the `ReadBurst` path after the final pass
//! and counts pattern mismatches. In burst mode [`DmaConfig::dst`] is
//! the byte address of the target module's register block (any
//! `BLOCK_SIZE`-aligned address inside its decode window — typically the
//! window base). By default the engine self-allocates, so the target
//! model must support `ALLOC` (the wrapper and the SimHeap do);
//! [`BurstSpec::at`] instead streams at a caller-provided protocol
//! pointer, which is how bursts drive the static-protocol baseline
//! (vptr = table byte offset, allocation answers `Unsupported`). Direct
//! static tables have no protocol at all.

use std::any::Any;

use dmi_core::{regs, ElemType, Opcode, Status};
use dmi_interconnect::{
    BusMaster, ErrorCounts, MasterError, MasterProbe, MasterStats, MasterWiring,
};
use dmi_kernel::{Component, Ctx, SnapshotError, StateReader, StateWriter, Wake};

/// What the engine does with each word of the block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaKind {
    /// Read `src + i·stride`, then write the data to `dst + i·stride`.
    Copy {
        /// Source byte address of word 0.
        src: u32,
    },
    /// Write `seed + pass·words + i` to `dst + i·stride` (self-describing
    /// pattern: a checker can recompute every expected word).
    Fill {
        /// First pattern word.
        seed: u32,
    },
}

/// Burst programming of a [`DmaEngine`]: instead of scalar stores, the
/// engine drives a protocol memory's register block — `ALLOC` its own
/// block, then `WriteBurst` + streamed `DATA` beats per chunk — so the
/// slave-side banked I/O arrays carry the payload (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurstSpec {
    /// Beats per `WriteBurst`/`ReadBurst` command (chunk length in
    /// words; the final chunk of a pass may be shorter). Minimum 1.
    pub beats: u32,
    /// Read the block back over the `ReadBurst` path after the final
    /// pass and count pattern mismatches
    /// ([`DmaStats::verify_mismatches`]).
    pub verify: bool,
    /// Target an existing protocol pointer instead of self-allocating:
    /// the engine skips the `ALLOC` dialogue and streams its chunks at
    /// this vptr. This is how bursts drive models without allocation
    /// support — on the static-protocol baseline a vptr is simply a
    /// byte offset into the table. `None` (the default) self-allocates.
    pub at: Option<u32>,
}

impl Default for BurstSpec {
    fn default() -> Self {
        BurstSpec {
            beats: 16,
            verify: false,
            at: None,
        }
    }
}

/// Error-recovery policy of a burst-mode engine: what to do when the
/// slave answers a protocol step with a non-`Ok` status.
///
/// Retries restart the failed dialogue (the whole `ALLOC` exchange, or
/// the current chunk from its `ARG0` setup) after a deterministic
/// simulated-time backoff — `gap_cycles + backoff_cycles` idle edges,
/// never wall-clock. When the budget is exhausted the engine records a
/// typed [`MasterError`] and either retires cleanly (`done` raised,
/// `escalate == false`) or stops the kernel with a `fault:`-prefixed
/// error the system layer converts into `StopCause::Fault`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries per dialogue before giving up (0 = abort on the first
    /// error, but still via the typed-error path).
    pub max_retries: u32,
    /// Extra idle edges inserted before each retry, on top of the
    /// engine's `gap_cycles`.
    pub backoff_cycles: u32,
    /// On exhaustion, stop the whole run (`StopCause::Fault`) instead
    /// of retiring this engine quietly.
    pub escalate: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            backoff_cycles: 8,
            escalate: false,
        }
    }
}

/// Programming of a [`DmaEngine`].
#[derive(Debug, Clone, Copy)]
pub struct DmaConfig {
    /// Transfer kind (copy or pattern fill).
    pub kind: DmaKind,
    /// Destination byte address of word 0 — or, in burst mode, of the
    /// target module's register block (see [`BurstSpec`]).
    pub dst: u32,
    /// Words per pass.
    pub words: u32,
    /// Byte stride between consecutive words (normally 4). Scalar mode
    /// only; the protocol packs burst elements densely.
    pub stride: u32,
    /// Passes over the block before raising `done`.
    pub passes: u32,
    /// Idle cycles inserted between transfers (0 = back-to-back, which
    /// still leaves the mandatory one low-`req` cycle between
    /// transactions).
    pub gap_cycles: u32,
    /// Burst mode: drive the protocol register block instead of scalar
    /// stores. Only meaningful for [`DmaKind::Fill`] engines (a copy has
    /// no protocol-level source pointer); ignored for copies.
    pub burst: Option<BurstSpec>,
    /// Error recovery for burst-mode protocol errors. `None` (the
    /// default) keeps the legacy abort-on-first-error sequencing —
    /// bit-identical to the pre-retry engine. `Some` inserts a STATUS
    /// check after each chunk's beats and retries failed dialogues per
    /// the policy.
    pub retry: Option<RetryPolicy>,
}

impl Default for DmaConfig {
    fn default() -> Self {
        DmaConfig {
            kind: DmaKind::Fill { seed: 0 },
            dst: 0x8000_0000,
            words: 16,
            stride: 4,
            passes: 1,
            gap_cycles: 0,
            burst: None,
            retry: None,
        }
    }
}

impl DmaConfig {
    /// The pattern word a [`DmaKind::Fill`] engine writes at (`pass`,
    /// `word`) — what a checker should expect to find at
    /// `dst + word·stride` after the final pass.
    pub fn fill_word(seed: u32, words: u32, pass: u32, word: u32) -> u32 {
        seed.wrapping_add(pass.wrapping_mul(words)).wrapping_add(word)
    }
}

/// Execution counters of a DMA component.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DmaStats {
    /// Rising clock edges observed while not done.
    pub active_cycles: u64,
    /// Edges spent with `req` high and no `ack`.
    pub bus_wait_cycles: u64,
    /// Completed bus transactions (a copy costs two per word; burst mode
    /// counts every MMIO transaction, setup registers included).
    pub transactions: u64,
    /// Words fully transferred (scalar words or burst fill beats).
    pub words_done: u64,
    /// Burst verify beats that did not match the expected pattern.
    pub verify_mismatches: u64,
    /// Protocol steps the slave answered with a non-OK status (burst
    /// mode; every observation counts, including each failed retry
    /// attempt — without a [`RetryPolicy`] the engine aborts to `done`
    /// on the first one).
    pub protocol_errors: u64,
    /// The same observations bucketed by status code.
    pub errors: ErrorCounts,
    /// Retry attempts made under the engine's [`RetryPolicy`].
    pub retries: u64,
    /// Dialogues (alloc exchanges or chunks) that succeeded after at
    /// least one retry.
    pub recovered: u64,
    /// The unrecovered error the engine gave up on, if any.
    pub fault: Option<MasterError>,
    /// Whether the engine has raised `done`.
    pub done: bool,
}

/// The [`BusMaster`] specification for a DMA engine.
#[derive(Debug, Clone, Copy)]
pub struct DmaEngine {
    config: DmaConfig,
}

impl DmaEngine {
    /// Creates an engine specification.
    pub fn new(config: DmaConfig) -> Self {
        DmaEngine { config }
    }

    /// The programmed configuration.
    pub fn config(&self) -> &DmaConfig {
        &self.config
    }
}

impl BusMaster for DmaEngine {
    fn kind(&self) -> &'static str {
        "dma"
    }

    fn address_footprint(&self) -> Vec<(u32, u32)> {
        let c = &self.config;
        let mut ranges = Vec::new();
        if c.burst.is_some() && matches!(c.kind, DmaKind::Fill { .. }) {
            // Burst mode drives the MMIO register block at `dst`; the
            // payload lands behind the protocol, inside the same module.
            ranges.push((c.dst, regs::BLOCK_SIZE));
        } else if c.words > 0 {
            // Scalar stores touch dst + i·stride for i in 0..words, each
            // one word wide (saturating: a wrapping span is reported as
            // reaching the top of the address space, and the decode-gap
            // check flags it there).
            let span = (c.words - 1).saturating_mul(c.stride).saturating_add(4);
            ranges.push((c.dst, span));
            if let DmaKind::Copy { src } = c.kind {
                ranges.push((src, span));
            }
        }
        ranges
    }

    fn probe(&self) -> MasterProbe {
        |any| {
            any.downcast_ref::<DmaComponent>().map(|c| {
                let s = c.stats();
                MasterStats {
                    active_cycles: s.active_cycles,
                    bus_wait_cycles: s.bus_wait_cycles,
                    transactions: s.transactions,
                    done: s.done,
                    error_statuses: s.errors,
                    retries: s.retries,
                    recovered: s.recovered,
                    fault: s.fault,
                }
            })
        }
    }

    fn into_component(self: Box<Self>, name: String, wiring: MasterWiring) -> Box<dyn Component> {
        Box::new(DmaComponent::new(name, self.config, wiring))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Idle for `0..=n` more edges, then issue the current transfer.
    Gap(u32),
    /// Request on the wires, waiting for acknowledge.
    WaitAck,
    /// All passes complete, `done` driven.
    Finished,
}

/// Where the burst-mode micro-sequencer is in the protocol dialogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BurstStep {
    /// `ARG0 := words`, `ARG1 := U32`, `CMD := ALLOC`, then read back
    /// `STATUS` and `RESULT` (the vptr).
    AllocArg0,
    AllocArg1,
    AllocCmd,
    AllocStatus,
    AllocResult,
    /// Per-chunk setup: `ARG0 := vptr + chunk·4`, `ARG1 := U32`,
    /// `ARG2 := chunk length`, `CMD := WriteBurst`/`ReadBurst`, then a
    /// `STATUS` read-back (a rejected burst command must not be fed
    /// `DATA` beats).
    ChunkArg0,
    ChunkArg1,
    ChunkArg2,
    ChunkCmd,
    ChunkStatus,
    /// One `DATA` beat of the active chunk.
    ChunkData,
    /// Post-chunk `STATUS` read-back, inserted only under a
    /// [`RetryPolicy`]: beats answer on the data wires, so a mid-burst
    /// error (an aborted burst, a fault-killed beat) is only observable
    /// by re-reading STATUS after the chunk. Without a policy the step
    /// never runs and the dialogue is bit-identical to the legacy
    /// engine.
    ChunkCheck,
}

/// Live state of a burst-mode engine.
#[derive(Debug, Clone, Copy)]
struct BurstSeq {
    spec: BurstSpec,
    step: BurstStep,
    /// Protocol pointer of the engine's own allocation.
    vptr: u32,
    /// Current pass (write passes, then one optional verify pass).
    pass: u32,
    /// Word index of the current chunk's first beat.
    chunk: u32,
    /// Beat index within the current chunk.
    beat: u32,
    /// Whether the read-back verify pass is running.
    verifying: bool,
    /// Retries spent on the current dialogue (alloc exchange or chunk).
    attempt: u32,
}

impl BurstSeq {
    fn new(spec: BurstSpec) -> Self {
        // A fixed target pointer skips the ALLOC dialogue entirely.
        let (step, vptr) = match spec.at {
            Some(vptr) => (BurstStep::ChunkArg0, vptr),
            None => (BurstStep::AllocArg0, 0),
        };
        BurstSeq {
            spec: BurstSpec {
                beats: spec.beats.max(1),
                ..spec
            },
            step,
            vptr,
            pass: 0,
            chunk: 0,
            beat: 0,
            verifying: false,
            attempt: 0,
        }
    }

    /// Length in words of the chunk starting at `self.chunk`.
    fn chunk_len(&self, words: u32) -> u32 {
        self.spec.beats.min(words - self.chunk)
    }
}

/// The kernel component executing a [`DmaConfig`]. Built via
/// [`DmaEngine`]'s [`BusMaster`] impl; subscribe it to the clock's rising
/// edge.
#[derive(Debug)]
pub struct DmaComponent {
    name: String,
    config: DmaConfig,
    wiring: MasterWiring,
    phase: Phase,
    /// Current pass (0-based).
    pass: u32,
    /// Current word within the pass.
    word: u32,
    /// For copies: `false` = read transaction, `true` = write-back.
    writeback: bool,
    /// Data captured by the read half of a copy.
    captured: u32,
    /// Burst-mode sequencer (fill engines with a [`BurstSpec`] only).
    burst: Option<BurstSeq>,
    stats: DmaStats,
}

impl DmaComponent {
    /// Creates the component (normally done by the builder through
    /// [`BusMaster::into_component`]).
    pub fn new(name: impl Into<String>, config: DmaConfig, wiring: MasterWiring) -> Self {
        let burst = match (config.burst, config.kind) {
            (Some(spec), DmaKind::Fill { .. }) => Some(BurstSeq::new(spec)),
            _ => None,
        };
        DmaComponent {
            name: name.into(),
            config,
            wiring,
            phase: Phase::Gap(0),
            pass: 0,
            word: 0,
            writeback: false,
            captured: 0,
            burst,
            stats: DmaStats::default(),
        }
    }

    /// Execution counters.
    pub fn stats(&self) -> DmaStats {
        self.stats
    }

    /// Whether all programmed passes have completed.
    pub fn is_done(&self) -> bool {
        self.stats.done
    }

    fn offset(&self) -> u32 {
        self.word.wrapping_mul(self.config.stride)
    }

    /// The bus operation of the current transfer: `(addr, we, wdata)`.
    fn current_op(&self) -> (u32, bool, u32) {
        if let Some(b) = &self.burst {
            return self.burst_op(b);
        }
        let off = self.offset();
        match self.config.kind {
            DmaKind::Copy { src } if !self.writeback => (src.wrapping_add(off), false, 0),
            DmaKind::Copy { .. } => (self.config.dst.wrapping_add(off), true, self.captured),
            DmaKind::Fill { seed } => (
                self.config.dst.wrapping_add(off),
                true,
                DmaConfig::fill_word(seed, self.config.words, self.pass, self.word),
            ),
        }
    }

    /// The pattern seed (burst mode is fill-only by construction).
    fn fill_seed(&self) -> u32 {
        match self.config.kind {
            DmaKind::Fill { seed } => seed,
            DmaKind::Copy { .. } => 0,
        }
    }

    /// The MMIO transaction a burst-mode engine issues next:
    /// `(addr, we, wdata)` against the register block at `config.dst`.
    fn burst_op(&self, b: &BurstSeq) -> (u32, bool, u32) {
        let base = self.config.dst;
        match b.step {
            BurstStep::AllocArg0 => (base + regs::ARG0, true, self.config.words),
            BurstStep::AllocArg1 => (base + regs::ARG1, true, ElemType::U32 as u32),
            BurstStep::AllocCmd => (base + regs::CMD, true, Opcode::Alloc as u32),
            BurstStep::AllocStatus => (base + regs::STATUS, false, 0),
            BurstStep::AllocResult => (base + regs::RESULT, false, 0),
            BurstStep::ChunkArg0 => (base + regs::ARG0, true, b.vptr.wrapping_add(b.chunk * 4)),
            BurstStep::ChunkArg1 => (base + regs::ARG1, true, ElemType::U32 as u32),
            BurstStep::ChunkArg2 => (base + regs::ARG2, true, b.chunk_len(self.config.words)),
            BurstStep::ChunkCmd => {
                let op = if b.verifying {
                    Opcode::ReadBurst
                } else {
                    Opcode::WriteBurst
                };
                (base + regs::CMD, true, op as u32)
            }
            BurstStep::ChunkStatus | BurstStep::ChunkCheck => (base + regs::STATUS, false, 0),
            BurstStep::ChunkData => {
                if b.verifying {
                    (base + regs::DATA, false, 0)
                } else {
                    let word = b.chunk + b.beat;
                    (
                        base + regs::DATA,
                        true,
                        DmaConfig::fill_word(self.fill_seed(), self.config.words, b.pass, word),
                    )
                }
            }
        }
    }

    /// Records one observed non-`Ok` protocol status.
    fn record_error(&mut self, raw: u32) {
        self.stats.protocol_errors += 1;
        self.stats.errors.record(raw);
    }

    /// Handles a failed protocol step: restart the dialogue from
    /// `restart` (with deterministic simulated-time backoff) while
    /// retry budget remains, otherwise record a typed [`MasterError`]
    /// and give up — retiring cleanly or escalating to a kernel stop
    /// per the policy.
    fn fail_step(&mut self, ctx: &mut Ctx<'_>, mut b: BurstSeq, raw: u32, restart: BurstStep) {
        self.record_error(raw);
        if let Some(p) = self.config.retry {
            if b.attempt < p.max_retries {
                b.attempt += 1;
                self.stats.retries += 1;
                b.step = restart;
                b.beat = 0;
                self.burst = Some(b);
                self.phase = Phase::Gap(self.config.gap_cycles.saturating_add(p.backoff_cycles));
                return;
            }
        }
        self.stats.fault = Some(MasterError {
            status: Status::from_u32(raw),
            raw,
            retries: b.attempt,
            pass: b.pass,
            word: b.chunk,
        });
        self.burst = Some(b);
        if self.config.retry.is_some_and(|p| p.escalate) {
            // The `fault:` prefix is the marker the system layer uses
            // to classify this stop as `StopCause::Fault`; `done` is
            // deliberately not raised.
            ctx.stop_error(format!(
                "fault: {}: unrecovered protocol error (status {raw:#x}) after {} retries",
                self.name, b.attempt,
            ));
            self.phase = Phase::Finished;
        } else {
            self.finish(ctx);
        }
    }

    /// Moves the sequencer past a completed chunk. Returns `true` when
    /// the whole programmed transfer finished (`finish` was called).
    fn complete_chunk(&mut self, ctx: &mut Ctx<'_>, b: &mut BurstSeq) -> bool {
        let words = self.config.words;
        b.chunk += b.chunk_len(words);
        b.beat = 0;
        if b.chunk >= words {
            b.chunk = 0;
            if b.verifying {
                self.burst = Some(*b);
                self.finish(ctx);
                return true;
            }
            b.pass += 1;
            if b.pass >= self.config.passes {
                if b.spec.verify {
                    b.verifying = true;
                    b.step = BurstStep::ChunkArg0;
                } else {
                    self.burst = Some(*b);
                    self.finish(ctx);
                    return true;
                }
            } else {
                b.step = BurstStep::ChunkArg0;
            }
        } else {
            b.step = BurstStep::ChunkArg0;
        }
        false
    }

    /// Advances the burst sequencer after an acknowledged MMIO
    /// transaction (`self.captured` holds the read data).
    fn advance_burst(&mut self, ctx: &mut Ctx<'_>) {
        self.stats.transactions += 1;
        let words = self.config.words;
        // Under a retry policy every chunk ends in a ChunkCheck STATUS
        // read-back; without one the dialogue is the legacy sequence.
        let checked = self.config.retry.is_some();
        let mut b = self.burst.expect("advance_burst only in burst mode");
        let captured = self.captured;
        match b.step {
            BurstStep::AllocArg0 => b.step = BurstStep::AllocArg1,
            BurstStep::AllocArg1 => b.step = BurstStep::AllocCmd,
            BurstStep::AllocCmd => b.step = BurstStep::AllocStatus,
            BurstStep::AllocStatus => {
                if captured == Status::Ok as u32 {
                    // The model rejected earlier attempts but accepted
                    // this one: the alloc dialogue recovered.
                    if b.attempt > 0 {
                        self.stats.recovered += 1;
                    }
                    b.attempt = 0;
                    b.step = BurstStep::AllocResult;
                } else {
                    // The model rejected the allocation (out of memory,
                    // no ALLOC support, …).
                    self.fail_step(ctx, b, captured, BurstStep::AllocArg0);
                    return;
                }
            }
            BurstStep::AllocResult => {
                b.vptr = captured;
                b.step = BurstStep::ChunkArg0;
            }
            BurstStep::ChunkArg0 => b.step = BurstStep::ChunkArg1,
            BurstStep::ChunkArg1 => b.step = BurstStep::ChunkArg2,
            BurstStep::ChunkArg2 => b.step = BurstStep::ChunkCmd,
            BurstStep::ChunkCmd => b.step = BurstStep::ChunkStatus,
            BurstStep::ChunkStatus => {
                if captured == Status::Ok as u32 {
                    b.beat = 0;
                    b.step = BurstStep::ChunkData;
                } else {
                    // The burst command was rejected (locked, bad
                    // pointer, …): never stream DATA beats against a
                    // failed command.
                    self.fail_step(ctx, b, captured, BurstStep::ChunkArg0);
                    return;
                }
            }
            BurstStep::ChunkData => {
                if b.verifying {
                    let expect = DmaConfig::fill_word(
                        self.fill_seed(),
                        words,
                        self.config.passes - 1,
                        b.chunk + b.beat,
                    );
                    if captured != expect {
                        self.stats.verify_mismatches += 1;
                    }
                } else if !checked {
                    // With a retry policy, words only count once their
                    // chunk passes its post-chunk STATUS check (a
                    // retried chunk must not double-count).
                    self.stats.words_done += 1;
                }
                b.beat += 1;
                if b.beat < b.chunk_len(words) {
                    // Next beat of the same chunk.
                } else if checked {
                    b.step = BurstStep::ChunkCheck;
                } else if self.complete_chunk(ctx, &mut b) {
                    return;
                }
            }
            BurstStep::ChunkCheck => {
                if captured == Status::Ok as u32 {
                    if !b.verifying {
                        self.stats.words_done += b.chunk_len(words) as u64;
                    }
                    if b.attempt > 0 {
                        self.stats.recovered += 1;
                    }
                    b.attempt = 0;
                    if self.complete_chunk(ctx, &mut b) {
                        return;
                    }
                } else {
                    // A mid-chunk failure (aborted burst, faulted beat)
                    // only surfaces here: beats answer on the data
                    // wires, so the chunk must be re-checked by STATUS.
                    self.fail_step(ctx, b, captured, BurstStep::ChunkArg0);
                    return;
                }
            }
        }
        self.burst = Some(b);
        self.phase = Phase::Gap(self.config.gap_cycles);
    }

    fn issue(&mut self, ctx: &mut Ctx<'_>) {
        let (addr, we, wdata) = self.current_op();
        let p = self.wiring.ports;
        ctx.write_bit(p.req, true);
        ctx.write_bit(p.we, we);
        ctx.write(p.size, 2); // word transfers
        ctx.write(p.addr, addr as u64);
        ctx.write(p.wdata, wdata as u64);
        self.phase = Phase::WaitAck;
    }

    fn finish(&mut self, ctx: &mut Ctx<'_>) {
        ctx.write_bit(self.wiring.done, true);
        self.stats.done = true;
        self.phase = Phase::Finished;
    }

    /// Advances to the next transfer after an acknowledged transaction.
    fn advance(&mut self, ctx: &mut Ctx<'_>) {
        self.stats.transactions += 1;
        let word_complete = match self.config.kind {
            DmaKind::Copy { .. } if !self.writeback => {
                self.writeback = true;
                false
            }
            _ => {
                self.writeback = false;
                true
            }
        };
        if word_complete {
            self.stats.words_done += 1;
            self.word += 1;
            if self.word >= self.config.words {
                self.word = 0;
                self.pass += 1;
                if self.pass >= self.config.passes {
                    self.finish(ctx);
                    return;
                }
            }
        }
        self.phase = Phase::Gap(self.config.gap_cycles);
    }
}

impl Component for DmaComponent {
    fn name(&self) -> &str {
        &self.name
    }

    fn wake(&mut self, ctx: &mut Ctx<'_>) {
        match ctx.cause() {
            Wake::Start => {
                let p = self.wiring.ports;
                ctx.write_bit(p.req, false);
                ctx.write_bit(p.we, false);
                ctx.write(p.size, 0);
                ctx.write(p.addr, 0);
                ctx.write(p.wdata, 0);
                ctx.write_bit(self.wiring.done, false);
            }
            Wake::Signal(_) if ctx.is_signal(self.wiring.clk) => {
                if self.phase == Phase::Finished {
                    return;
                }
                self.stats.active_cycles += 1;
                match self.phase {
                    Phase::Gap(0) => {
                        // Nothing programmed at all: raise done and rest.
                        if self.config.words == 0 || self.config.passes == 0 {
                            self.finish(ctx);
                        } else {
                            self.issue(ctx);
                        }
                    }
                    Phase::Gap(n) => self.phase = Phase::Gap(n - 1),
                    Phase::WaitAck => {
                        let p = self.wiring.ports;
                        if ctx.read_bit(p.ack) {
                            self.captured = ctx.read(p.rdata) as u32;
                            ctx.write_bit(p.req, false);
                            if self.burst.is_some() {
                                self.advance_burst(ctx);
                            } else {
                                self.advance(ctx);
                            }
                        } else {
                            self.stats.bus_wait_cycles += 1;
                        }
                    }
                    Phase::Finished => unreachable!(),
                }
            }
            _ => {}
        }
    }

    fn save_state(&self, w: &mut StateWriter) {
        match self.phase {
            Phase::Gap(n) => {
                w.put_u8(0);
                w.put_u32(n);
            }
            Phase::WaitAck => w.put_u8(1),
            Phase::Finished => w.put_u8(2),
        }
        w.put_u32(self.pass);
        w.put_u32(self.word);
        w.put_bool(self.writeback);
        w.put_u32(self.captured);
        match &self.burst {
            None => w.put_bool(false),
            Some(b) => {
                w.put_bool(true);
                w.put_u32(b.spec.beats);
                w.put_bool(b.spec.verify);
                match b.spec.at {
                    None => w.put_bool(false),
                    Some(v) => {
                        w.put_bool(true);
                        w.put_u32(v);
                    }
                }
                w.put_u8(burst_step_tag(b.step));
                w.put_u32(b.vptr);
                w.put_u32(b.pass);
                w.put_u32(b.chunk);
                w.put_u32(b.beat);
                w.put_bool(b.verifying);
                w.put_u32(b.attempt);
            }
        }
        w.put_u64(self.stats.active_cycles);
        w.put_u64(self.stats.bus_wait_cycles);
        w.put_u64(self.stats.transactions);
        w.put_u64(self.stats.words_done);
        w.put_u64(self.stats.verify_mismatches);
        w.put_u64(self.stats.protocol_errors);
        for bucket in self.stats.errors.as_array() {
            w.put_u64(bucket);
        }
        w.put_u64(self.stats.retries);
        w.put_u64(self.stats.recovered);
        match &self.stats.fault {
            None => w.put_bool(false),
            Some(f) => {
                w.put_bool(true);
                w.put_u32(f.raw);
                w.put_u32(f.retries);
                w.put_u32(f.pass);
                w.put_u32(f.word);
            }
        }
        w.put_bool(self.stats.done);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.phase = match r.get_u8("dma phase tag")? {
            0 => Phase::Gap(r.get_u32("dma gap")?),
            1 => Phase::WaitAck,
            2 => Phase::Finished,
            t => {
                return Err(SnapshotError::Corrupt {
                    context: format!("unknown dma phase tag {t}"),
                })
            }
        };
        self.pass = r.get_u32("dma pass")?;
        self.word = r.get_u32("dma word")?;
        self.writeback = r.get_bool("dma writeback")?;
        self.captured = r.get_u32("dma captured")?;
        self.burst = if r.get_bool("dma burst flag")? {
            let beats = r.get_u32("burst beats")?;
            let verify = r.get_bool("burst verify")?;
            let at = if r.get_bool("burst at flag")? {
                Some(r.get_u32("burst at")?)
            } else {
                None
            };
            let step = burst_step_from_tag(r.get_u8("burst step tag")?)?;
            Some(BurstSeq {
                spec: BurstSpec { beats, verify, at },
                step,
                vptr: r.get_u32("burst vptr")?,
                pass: r.get_u32("burst pass")?,
                chunk: r.get_u32("burst chunk")?,
                beat: r.get_u32("burst beat")?,
                verifying: r.get_bool("burst verifying")?,
                attempt: r.get_u32("burst attempt")?,
            })
        } else {
            None
        };
        self.stats.active_cycles = r.get_u64("dma stats.active_cycles")?;
        self.stats.bus_wait_cycles = r.get_u64("dma stats.bus_wait_cycles")?;
        self.stats.transactions = r.get_u64("dma stats.transactions")?;
        self.stats.words_done = r.get_u64("dma stats.words_done")?;
        self.stats.verify_mismatches = r.get_u64("dma stats.verify_mismatches")?;
        self.stats.protocol_errors = r.get_u64("dma stats.protocol_errors")?;
        let mut buckets = [0u64; 16];
        for bucket in &mut buckets {
            *bucket = r.get_u64("dma error bucket")?;
        }
        self.stats.errors = ErrorCounts::from_array(buckets);
        self.stats.retries = r.get_u64("dma stats.retries")?;
        self.stats.recovered = r.get_u64("dma stats.recovered")?;
        self.stats.fault = if r.get_bool("dma fault flag")? {
            let raw = r.get_u32("dma fault raw")?;
            Some(MasterError {
                status: Status::from_u32(raw),
                raw,
                retries: r.get_u32("dma fault retries")?,
                pass: r.get_u32("dma fault pass")?,
                word: r.get_u32("dma fault word")?,
            })
        } else {
            None
        };
        self.stats.done = r.get_bool("dma stats.done")?;
        Ok(())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Stable wire tag of a [`BurstStep`] (declaration order).
fn burst_step_tag(step: BurstStep) -> u8 {
    match step {
        BurstStep::AllocArg0 => 0,
        BurstStep::AllocArg1 => 1,
        BurstStep::AllocCmd => 2,
        BurstStep::AllocStatus => 3,
        BurstStep::AllocResult => 4,
        BurstStep::ChunkArg0 => 5,
        BurstStep::ChunkArg1 => 6,
        BurstStep::ChunkArg2 => 7,
        BurstStep::ChunkCmd => 8,
        BurstStep::ChunkStatus => 9,
        BurstStep::ChunkData => 10,
        BurstStep::ChunkCheck => 11,
    }
}

/// Inverse of [`burst_step_tag`].
fn burst_step_from_tag(tag: u8) -> Result<BurstStep, SnapshotError> {
    Ok(match tag {
        0 => BurstStep::AllocArg0,
        1 => BurstStep::AllocArg1,
        2 => BurstStep::AllocCmd,
        3 => BurstStep::AllocStatus,
        4 => BurstStep::AllocResult,
        5 => BurstStep::ChunkArg0,
        6 => BurstStep::ChunkArg1,
        7 => BurstStep::ChunkArg2,
        8 => BurstStep::ChunkCmd,
        9 => BurstStep::ChunkStatus,
        10 => BurstStep::ChunkData,
        11 => BurstStep::ChunkCheck,
        _ => {
            return Err(SnapshotError::Corrupt {
                context: format!("unknown burst step tag {tag}"),
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmi_core::{SlavePorts, StaticMemConfig, StaticTableMemory};
    use dmi_interconnect::{
        AddressMap, BusConfig, MasterIf, SharedBus, SlaveIf,
    };
    use dmi_kernel::{Edge, Simulator};

    /// Wires one DMA engine and one static memory on a shared bus.
    fn build(config: DmaConfig) -> (Simulator, dmi_kernel::ComponentId, dmi_kernel::ComponentId) {
        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", 2);

        let ports = MasterIf::declare(&mut sim, "dma0.bus");
        let done = sim.wire("dma0.done", 1);
        let spec: Box<dyn BusMaster> = Box::new(DmaEngine::new(config));
        let comp = spec.into_component(
            "dma0".into(),
            MasterWiring {
                clk,
                ports,
                done,
            },
        );
        let dma_id = sim.add_component(comp);
        sim.subscribe(dma_id, clk, Edge::Rising);

        let sports = SlavePorts::declare(&mut sim, "mem0.s");
        let mem_id = sim.add_component(Box::new(StaticTableMemory::new(
            "mem0",
            clk,
            sports,
            0x8000_0000,
            StaticMemConfig {
                capacity: 0x1000,
                ..StaticMemConfig::default()
            },
        )));
        sim.subscribe(mem_id, clk, Edge::Rising);

        let mut map = AddressMap::new();
        map.try_add(0x8000_0000, 0x1000, 0).unwrap();
        let bus = SharedBus::new(
            "bus",
            clk,
            vec![ports],
            vec![SlaveIf {
                req: sports.req,
                we: sports.we,
                size: sports.size,
                addr: sports.addr,
                wdata: sports.wdata,
                master: sports.master,
                ack: sports.ack,
                rdata: sports.rdata,
            }],
            map,
            BusConfig::default(),
        );
        let bus_id = sim.add_component(Box::new(bus));
        sim.subscribe(bus_id, clk, Edge::Rising);
        (sim, dma_id, mem_id)
    }

    fn mem_word(sim: &Simulator, id: dmi_kernel::ComponentId, off: usize) -> u32 {
        let m: &StaticTableMemory = sim.component(id).unwrap();
        u32::from_le_bytes(m.bytes()[off..off + 4].try_into().unwrap())
    }

    #[test]
    fn fill_writes_the_pattern() {
        let cfg = DmaConfig {
            kind: DmaKind::Fill { seed: 0x100 },
            dst: 0x8000_0000,
            words: 8,
            passes: 2,
            ..DmaConfig::default()
        };
        let (mut sim, dma_id, mem_id) = build(cfg);
        sim.run_for(10_000);
        let dma: &DmaComponent = sim.component(dma_id).unwrap();
        assert!(dma.is_done());
        assert_eq!(dma.stats().words_done, 16, "8 words x 2 passes");
        assert_eq!(dma.stats().transactions, 16);
        for i in 0..8u32 {
            // The last pass (pass 1) wins.
            assert_eq!(
                mem_word(&sim, mem_id, (i * 4) as usize),
                DmaConfig::fill_word(0x100, 8, 1, i),
                "word {i}"
            );
        }
    }

    #[test]
    fn copy_moves_a_block() {
        // Fill the source region first, then copy it.
        let fill = DmaConfig {
            kind: DmaKind::Fill { seed: 0xABC0 },
            dst: 0x8000_0000,
            words: 4,
            ..DmaConfig::default()
        };
        let (mut sim, _, mem_id) = build(fill);
        sim.run_for(10_000);
        // Second system: copy within the same memory image is simpler to
        // set up as its own run; emulate by re-filling then copying via a
        // fresh system whose source was pre-filled through the same DMA
        // path. Here: copy from the filled region to a disjoint one.
        let copy = DmaConfig {
            kind: DmaKind::Copy { src: 0x8000_0000 },
            dst: 0x8000_0100,
            words: 4,
            ..DmaConfig::default()
        };
        // Chain: run the copy against the already-filled memory by reusing
        // the simulator is not possible (new wires needed), so verify the
        // copy end-to-end in one system with both engines instead.
        drop(sim);
        let _ = mem_id;

        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", 2);
        let mut masters = Vec::new();
        let mut ids = Vec::new();
        for (i, cfg) in [fill, copy].into_iter().enumerate() {
            let ports = MasterIf::declare(&mut sim, &format!("dma{i}.bus"));
            let done = sim.wire(format!("dma{i}.done"), 1);
            // Stagger the copy far enough behind the fill that the source
            // block is complete before the first copy read (fill takes
            // ~6 cycles/word here; 200 cycles is conservative).
            let cfg = if i == 1 {
                DmaConfig {
                    gap_cycles: 0,
                    ..cfg
                }
            } else {
                cfg
            };
            let mut comp = DmaComponent::new(
                format!("dma{i}"),
                cfg,
                MasterWiring { clk, ports, done },
            );
            if i == 1 {
                comp.phase = Phase::Gap(200);
            }
            let id = sim.add_component(Box::new(comp));
            sim.subscribe(id, clk, Edge::Rising);
            ids.push(id);
            masters.push(ports);
        }
        let sports = SlavePorts::declare(&mut sim, "mem0.s");
        let mem_id = sim.add_component(Box::new(StaticTableMemory::new(
            "mem0",
            clk,
            sports,
            0x8000_0000,
            StaticMemConfig {
                capacity: 0x1000,
                ..StaticMemConfig::default()
            },
        )));
        sim.subscribe(mem_id, clk, Edge::Rising);
        let mut map = AddressMap::new();
        map.try_add(0x8000_0000, 0x1000, 0).unwrap();
        let bus_id = sim.add_component(Box::new(SharedBus::new(
            "bus",
            clk,
            masters,
            vec![SlaveIf {
                req: sports.req,
                we: sports.we,
                size: sports.size,
                addr: sports.addr,
                wdata: sports.wdata,
                master: sports.master,
                ack: sports.ack,
                rdata: sports.rdata,
            }],
            map,
            BusConfig::default(),
        )));
        sim.subscribe(bus_id, clk, Edge::Rising);

        sim.run_for(20_000);
        for id in &ids {
            let d: &DmaComponent = sim.component(*id).unwrap();
            assert!(d.is_done(), "{} incomplete: {:?}", sim.component_name(*id), d.stats());
        }
        let copy_stats = sim.component::<DmaComponent>(ids[1]).unwrap().stats();
        assert_eq!(copy_stats.transactions, 8, "copy = read + write per word");
        for i in 0..4u32 {
            assert_eq!(
                mem_word(&sim, mem_id, (0x100 + i * 4) as usize),
                DmaConfig::fill_word(0xABC0, 4, 0, i),
                "copied word {i}"
            );
        }
    }

    /// Wires one DMA engine and one *protocol* memory (register-block
    /// MMIO over the given backend) on a shared bus.
    fn build_protocol(
        config: DmaConfig,
        backend: Box<dyn dmi_core::DsmBackend>,
    ) -> (Simulator, dmi_kernel::ComponentId, dmi_kernel::ComponentId) {
        use dmi_core::{MemoryModule, SlavePorts};
        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", 2);

        let ports = MasterIf::declare(&mut sim, "dma0.bus");
        let done = sim.wire("dma0.done", 1);
        let spec: Box<dyn BusMaster> = Box::new(DmaEngine::new(config));
        let comp = spec.into_component("dma0".into(), MasterWiring { clk, ports, done });
        let dma_id = sim.add_component(comp);
        sim.subscribe(dma_id, clk, Edge::Rising);

        let sports = SlavePorts::declare(&mut sim, "mem0.s");
        let mem_id = sim.add_component(Box::new(MemoryModule::new(
            "mem0",
            clk,
            sports,
            0x8000_0000,
            backend,
        )));
        sim.subscribe(mem_id, clk, Edge::Rising);

        let mut map = AddressMap::new();
        map.try_add(0x8000_0000, 0x1_0000, 0).unwrap();
        let bus = SharedBus::new(
            "bus",
            clk,
            vec![ports],
            vec![SlaveIf {
                req: sports.req,
                we: sports.we,
                size: sports.size,
                addr: sports.addr,
                wdata: sports.wdata,
                master: sports.master,
                ack: sports.ack,
                rdata: sports.rdata,
            }],
            map,
            BusConfig::default(),
        );
        let bus_id = sim.add_component(Box::new(bus));
        sim.subscribe(bus_id, clk, Edge::Rising);
        (sim, dma_id, mem_id)
    }

    #[test]
    fn burst_fill_streams_the_protocol() {
        use dmi_core::{WrapperBackend, WrapperConfig};
        let cfg = DmaConfig {
            kind: DmaKind::Fill { seed: 0x40 },
            dst: 0x8000_0000,
            words: 16,
            passes: 2,
            burst: Some(BurstSpec {
                beats: 5, // uneven chunking: 5 + 5 + 5 + 1
                verify: true,
                at: None,
            }),
            ..DmaConfig::default()
        };
        let (mut sim, dma_id, mem_id) = build_protocol(
            cfg,
            Box::new(WrapperBackend::new(WrapperConfig::default())),
        );
        sim.run_for(100_000);
        let dma: &DmaComponent = sim.component(dma_id).unwrap();
        let s = dma.stats();
        assert!(s.done, "burst engine incomplete: {s:?}");
        assert_eq!(s.protocol_errors, 0);
        assert_eq!(s.verify_mismatches, 0, "read-back pattern matches");
        assert_eq!(s.words_done, 32, "16 words x 2 write passes");
        // 5 alloc transactions + per pass (2 write + 1 verify):
        // 4 chunks x 5 setup (args, cmd, status check) + 16 DATA beats
        // = 36 transactions.
        assert_eq!(s.transactions, 5 + 3 * 36);
        // The payload went through the slave-side banked I/O arrays:
        // 32 write beats + 16 verify read beats.
        let mem: &dmi_core::MemoryModule = sim.component(mem_id).unwrap();
        assert_eq!(mem.backend().stats().burst_beats, 48);
        assert_eq!(mem.backend().stats().allocs, 1);
    }

    #[test]
    fn burst_fill_lands_in_the_simheap_arena() {
        use dmi_core::{SimHeapBackend, SimHeapConfig};
        let cfg = DmaConfig {
            kind: DmaKind::Fill { seed: 0x900 },
            dst: 0x8000_0000,
            words: 8,
            passes: 3,
            burst: Some(BurstSpec {
                beats: 4,
                verify: true,
                at: None,
            }),
            ..DmaConfig::default()
        };
        let (mut sim, dma_id, mem_id) =
            build_protocol(cfg, Box::new(SimHeapBackend::new(SimHeapConfig::default())));
        sim.run_for(100_000);
        let dma: &DmaComponent = sim.component(dma_id).unwrap();
        assert!(dma.is_done());
        assert_eq!(dma.stats().verify_mismatches, 0);
        assert_eq!(dma.stats().protocol_errors, 0);
        // The simheap's first allocation puts the payload at arena
        // offset 4 (after the boundary tag); the final pass's pattern is
        // what remains.
        let mem: &dmi_core::MemoryModule = sim.component(mem_id).unwrap();
        let heap = mem
            .backend()
            .as_any()
            .downcast_ref::<SimHeapBackend>()
            .unwrap();
        for i in 0..8u32 {
            assert_eq!(
                heap.peek_word(4 + i * 4),
                Some(DmaConfig::fill_word(0x900, 8, 2, i)),
                "word {i}"
            );
        }
    }

    #[test]
    fn fixed_pointer_burst_streams_the_static_protocol_table() {
        use dmi_core::{StaticMemConfig, StaticTableBackend};
        // `at` skips the ALLOC dialogue, so the allocation-less static
        // baseline takes the full burst path: write passes, verify
        // read-back, payload at the given table offset.
        let cfg = DmaConfig {
            kind: DmaKind::Fill { seed: 0x7700 },
            dst: 0x8000_0000,
            words: 8,
            passes: 2,
            burst: Some(BurstSpec {
                beats: 3, // uneven chunking: 3 + 3 + 2
                verify: true,
                at: Some(0x20),
            }),
            ..DmaConfig::default()
        };
        let (mut sim, dma_id, mem_id) = build_protocol(
            cfg,
            Box::new(StaticTableBackend::new(StaticMemConfig::default())),
        );
        sim.run_for(100_000);
        let dma: &DmaComponent = sim.component(dma_id).unwrap();
        assert!(dma.is_done());
        assert_eq!(dma.stats().protocol_errors, 0);
        assert_eq!(dma.stats().verify_mismatches, 0);
        assert_eq!(dma.stats().words_done, 16, "8 words × 2 write passes");
        let mem: &dmi_core::MemoryModule = sim.component(mem_id).unwrap();
        let table = mem
            .backend()
            .as_any()
            .downcast_ref::<StaticTableBackend>()
            .unwrap();
        for i in 0..8u32 {
            assert_eq!(
                table.peek_word(0x20 + i * 4),
                Some(DmaConfig::fill_word(0x7700, 8, 1, i)),
                "word {i}"
            );
        }
    }

    #[test]
    fn burst_against_allocless_model_reports_protocol_error() {
        use dmi_core::{StaticMemConfig, StaticTableBackend};
        let cfg = DmaConfig {
            kind: DmaKind::Fill { seed: 1 },
            dst: 0x8000_0000,
            words: 8,
            burst: Some(BurstSpec::default()),
            ..DmaConfig::default()
        };
        let (mut sim, dma_id, _) = build_protocol(
            cfg,
            Box::new(StaticTableBackend::new(StaticMemConfig::default())),
        );
        sim.run_for(10_000);
        let dma: &DmaComponent = sim.component(dma_id).unwrap();
        let s = dma.stats();
        assert!(s.done, "engine retires instead of hanging");
        assert_eq!(s.protocol_errors, 1, "ALLOC is unsupported: {s:?}");
        assert_eq!(s.words_done, 0);
    }

    #[test]
    fn burst_spec_is_ignored_for_copies() {
        let cfg = DmaConfig {
            kind: DmaKind::Copy { src: 0x8000_0000 },
            dst: 0x8000_0100,
            words: 4,
            burst: Some(BurstSpec::default()),
            ..DmaConfig::default()
        };
        let (mut sim, dma_id, _) = build(cfg);
        sim.run_for(10_000);
        let dma: &DmaComponent = sim.component(dma_id).unwrap();
        assert!(dma.is_done());
        assert_eq!(dma.stats().transactions, 8, "scalar copy: read + write per word");
    }

    #[test]
    fn zero_length_program_finishes_immediately() {
        let cfg = DmaConfig {
            words: 0,
            ..DmaConfig::default()
        };
        let (mut sim, dma_id, _) = build(cfg);
        sim.run_for(100);
        let dma: &DmaComponent = sim.component(dma_id).unwrap();
        assert!(dma.is_done());
        assert_eq!(dma.stats().transactions, 0);
    }

    #[test]
    fn probe_recovers_master_stats() {
        let spec = DmaEngine::new(DmaConfig::default());
        let probe = spec.probe();
        let (mut sim, dma_id, _) = build(DmaConfig::default());
        sim.run_for(10_000);
        let dma: &DmaComponent = sim.component(dma_id).unwrap();
        let stats = probe(dma.as_any()).expect("probe hits DmaComponent");
        assert!(stats.done);
        assert_eq!(stats.transactions, 16);
        assert!(probe(&0u32 as &dyn Any).is_none());
    }
}
