//! The context handed to a component on wake.

use crate::component::{ComponentId, Wake};
use crate::event::{EventKind, Queue};
use crate::signal::{SignalBoard, Wire};
use crate::time::SimTime;

/// Why a simulation stopped before exhausting its run limit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StopReason {
    /// A component declared the workload finished.
    Finished(String),
    /// A component detected an unrecoverable modelling error.
    Error(String),
}

impl StopReason {
    /// The human-readable message carried by the reason.
    pub fn message(&self) -> &str {
        match self {
            StopReason::Finished(m) | StopReason::Error(m) => m,
        }
    }

    /// Whether this is the error variant.
    pub fn is_error(&self) -> bool {
        matches!(self, StopReason::Error(_))
    }
}

/// Interface between a woken component and the kernel.
///
/// `Ctx` exposes reading and driving signals, timers, the current time and
/// the stop control. All signal writes go through delta-cycle semantics:
/// they become visible to readers only after the current delta commits.
pub struct Ctx<'a> {
    pub(crate) signals: &'a mut SignalBoard,
    pub(crate) queue: &'a mut dyn Queue,
    pub(crate) time: SimTime,
    pub(crate) delta: u32,
    pub(crate) cause: Wake,
    pub(crate) self_id: ComponentId,
    pub(crate) stop: &'a mut Option<StopReason>,
}

impl<'a> Ctx<'a> {
    /// Current simulated time.
    #[inline]
    pub fn time(&self) -> SimTime {
        self.time
    }

    /// Delta cycle index within the current time step.
    #[inline]
    pub fn delta(&self) -> u32 {
        self.delta
    }

    /// Why this component was woken.
    #[inline]
    pub fn cause(&self) -> Wake {
        self.cause
    }

    /// The id of the component being woken.
    #[inline]
    pub fn self_id(&self) -> ComponentId {
        self.self_id
    }

    /// Reads the committed value of a signal.
    #[inline]
    pub fn read(&self, wire: Wire) -> u64 {
        self.signals.read(wire)
    }

    /// Reads a signal as a boolean (non-zero = true).
    #[inline]
    pub fn read_bit(&self, wire: Wire) -> bool {
        self.signals.read_bit(wire)
    }

    /// Drives a signal; the value commits at the end of this delta cycle.
    #[inline]
    pub fn write(&mut self, wire: Wire, value: u64) {
        self.signals.write(wire, value);
    }

    /// Drives a 1-bit signal from a boolean.
    #[inline]
    pub fn write_bit(&mut self, wire: Wire, value: bool) {
        self.signals.write(wire, value as u64);
    }

    /// True when this wake was caused by `wire` rising to 1.
    ///
    /// Convenience for clocked components: subscription filters already
    /// guarantee the edge, this additionally checks *which* signal fired.
    #[inline]
    pub fn is_signal(&self, wire: Wire) -> bool {
        matches!(self.cause, Wake::Signal(id) if id == wire.id())
    }

    /// Schedules a [`Wake::Timer`] for this component `delay` ticks from
    /// now. A `delay` of zero wakes it again in the next delta cycle of the
    /// current time step.
    pub fn schedule_in(&mut self, delay: u64, tag: u64) {
        if delay == 0 {
            self.queue.push(
                self.time,
                self.delta + 1,
                EventKind::Wake(self.self_id, tag),
            );
        } else {
            self.queue
                .push(self.time + delay, 0, EventKind::Wake(self.self_id, tag));
        }
    }

    /// Requests the simulation to stop with a success message. The current
    /// delta cycle still completes so pending writes commit.
    pub fn stop(&mut self, message: impl Into<String>) {
        if self.stop.is_none() {
            *self.stop = Some(StopReason::Finished(message.into()));
        }
    }

    /// Requests the simulation to stop with an error. An error overrides a
    /// previously recorded success reason.
    pub fn stop_error(&mut self, message: impl Into<String>) {
        match self.stop {
            Some(r) if r.is_error() => {}
            _ => *self.stop = Some(StopReason::Error(message.into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stop_reason_accessors() {
        let f = StopReason::Finished("done".into());
        let e = StopReason::Error("bad".into());
        assert_eq!(f.message(), "done");
        assert!(!f.is_error());
        assert!(e.is_error());
    }
}
