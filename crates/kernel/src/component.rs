//! Components: the active entities of a simulation.
//!
//! A component is a struct owning its own state and holding [`Wire`]
//! handles for the signals it reads and drives. The kernel wakes a component
//! when an event addressed to it fires (a timer it scheduled, or a change on
//! a signal it subscribed to) and hands it a [`Ctx`] to interact with the
//! simulation.
//!
//! [`Wire`]: crate::Wire
//! [`Ctx`]: crate::Ctx

use std::any::Any;

use crate::ctx::Ctx;
use crate::signal::SignalId;
use crate::snapshot::{SnapshotError, StateReader, StateWriter};

/// Identifier of a component registered with a [`Simulator`].
///
/// [`Simulator`]: crate::Simulator
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId(u32);

impl ComponentId {
    /// Constructs an id from a raw index. Exposed for tests and data
    /// structures; kernels hand out ids via `Simulator::add_component`.
    #[inline]
    pub fn from_raw(index: usize) -> Self {
        ComponentId(index as u32)
    }

    /// The raw index form.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Why a component was woken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wake {
    /// First wake, at time zero, before any clock edge. Components use it to
    /// initialize their outputs.
    Start,
    /// A subscribed signal committed a matching change.
    Signal(SignalId),
    /// A timer scheduled via [`Ctx::schedule_in`] fired; the payload is the
    /// tag passed at scheduling time.
    ///
    /// [`Ctx::schedule_in`]: crate::Ctx::schedule_in
    Timer(u64),
}

/// An active simulation entity.
///
/// Implementations typically look like small hardware blocks: read inputs
/// with [`Ctx::read`], compute, drive outputs with [`Ctx::write`].
///
/// The `as_any` methods allow retrieving a concrete component back from the
/// simulator after a run (for statistics and result extraction):
///
/// ```
/// use dmi_kernel::{Component, Ctx, Simulator, Wake};
///
/// struct Counter { count: u64 }
/// impl Component for Counter {
///     fn name(&self) -> &str { "counter" }
///     fn wake(&mut self, _ctx: &mut Ctx<'_>) { self.count += 1; }
///     fn as_any(&self) -> &dyn std::any::Any { self }
///     fn as_any_mut(&mut self) -> &mut dyn std::any::Any { self }
/// }
///
/// let mut sim = Simulator::new();
/// let id = sim.add_component(Box::new(Counter { count: 0 }));
/// sim.run_for(10);
/// let c: &Counter = sim.component(id).unwrap();
/// assert_eq!(c.count, 1); // the Start wake
/// ```
///
/// [`Ctx::read`]: crate::Ctx::read
/// [`Ctx::write`]: crate::Ctx::write
pub trait Component: Any {
    /// Instance name, used in diagnostics and traces.
    fn name(&self) -> &str;

    /// Called whenever an event addressed to this component fires.
    /// [`Ctx::cause`] reports why.
    ///
    /// [`Ctx::cause`]: crate::Ctx::cause
    fn wake(&mut self, ctx: &mut Ctx<'_>);

    /// Upcast for post-run state extraction.
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast for post-run state extraction.
    fn as_any_mut(&mut self) -> &mut dyn Any;

    /// Serializes this component's mutable state for a [`Snapshot`].
    ///
    /// The default writes nothing — correct for stateless components
    /// (monitors, pure wiring). Stateful components override this
    /// together with [`Component::load_state`]; the two must agree on
    /// the payload layout. Wiring (wire handles, names, configuration)
    /// is *not* serialized: restore targets a freshly built
    /// identical-topology system that already owns it.
    ///
    /// [`Snapshot`]: crate::Snapshot
    fn save_state(&self, w: &mut StateWriter) {
        let _ = w;
    }

    /// Restores state previously written by [`Component::save_state`].
    ///
    /// Must never panic on corrupt input — decode through the typed
    /// [`StateReader`] getters and return their errors.
    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        let _ = r;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_id_roundtrip() {
        let id = ComponentId::from_raw(17);
        assert_eq!(id.index(), 17);
        assert_eq!(id, ComponentId::from_raw(17));
        assert!(ComponentId::from_raw(1) < ComponentId::from_raw(2));
    }

    #[test]
    fn wake_is_comparable() {
        assert_eq!(Wake::Start, Wake::Start);
        assert_ne!(Wake::Timer(1), Wake::Timer(2));
    }
}
