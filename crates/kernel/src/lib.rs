//! # dmi-kernel — discrete-event simulation kernel
//!
//! A compact SystemC-style simulation kernel: the substrate on which the
//! DATE'05 *dynamic memory integration* co-simulation framework is rebuilt.
//! The original paper runs on a C++/SystemC kernel; this crate provides the
//! equivalent semantics in safe Rust:
//!
//! * **events** ordered by `(time, delta, sequence)` — deterministic and
//!   reproducible across runs;
//! * **signals** (1–64 bit values) with evaluate→update *delta cycles*:
//!   writes become visible only when a delta commits, so clocked components
//!   behave like flip-flops and combinational components settle within a
//!   time step;
//! * **components** — plain structs implementing [`Component`], woken by
//!   subscriptions ([`Edge`]-filtered) or timers;
//! * **clocks** managed by the kernel;
//! * **VCD tracing** of any subset of signals.
//!
//! The clocked hot path is specialized end to end (see `README.md` and
//! `sim.rs`): subscriber wakes produced by a delta's update phase are
//! carried directly to the next delta in a scratch list instead of
//! round-tripping through the priority queue, carried wakes of one edge
//! are dispatched through a single reusable [`Ctx`] frame, a clock
//! toggle whose edge provably has no observer (per-signal
//! edge-subscriber summaries) skips the commit scan and wake pass
//! entirely, and periodic clock toggles live in a per-clock *calendar*
//! compared against the queue head by virtual sequence numbers, so they
//! never enter the event queue at all (`DMI_CLOCK_CALENDAR=0` restores
//! the queued reference path).
//! Dispatch order is provably identical to the unspecialized reference
//! paths, which stay available for differential testing
//! (`DMI_KERNEL_SPECIALIZE=0`, like the ISS's `DMI_PREDECODE=0`). The
//! event-queue implementation (binary heap vs time wheel) is
//! auto-selected from a system-size hint at the first run — see
//! [`QueueKind`].
//!
//! ## Quickstart
//!
//! ```
//! use dmi_kernel::{Component, Ctx, Edge, Simulator, Wake, Wire};
//!
//! /// A free-running counter driving an 8-bit bus.
//! struct Counter { clk: Wire, out: Wire, n: u64 }
//!
//! impl Component for Counter {
//!     fn name(&self) -> &str { "counter" }
//!     fn wake(&mut self, ctx: &mut Ctx<'_>) {
//!         if ctx.is_signal(self.clk) {
//!             self.n += 1;
//!             ctx.write(self.out, self.n);
//!         }
//!     }
//!     fn as_any(&self) -> &dyn std::any::Any { self }
//!     fn as_any_mut(&mut self) -> &mut dyn std::any::Any { self }
//! }
//!
//! let mut sim = Simulator::new();
//! let clk = sim.add_clock("clk", 10);
//! let out = sim.wire("count", 8);
//! let id = sim.add_component(Box::new(Counter { clk, out, n: 0 }));
//! sim.subscribe(id, clk, Edge::Rising);
//! let summary = sim.run_for(100);
//! assert_eq!(sim.peek(out), 10);
//! assert!(summary.stop.is_none());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod component;
mod ctx;
mod event;
mod signal;
mod sim;
mod snapshot;
mod stats;
mod time;
mod trace;

pub use component::{Component, ComponentId, Wake};
pub use ctx::{Ctx, StopReason};
pub use event::{Event, EventKind, EventQueue, Queue, WheelQueue, WHEEL_SLOTS};
pub use signal::{Change, Edge, SignalBoard, SignalId, Wire};
pub use snapshot::{
    crc32, frame_record, next_framed_record, FrameStream, FramedRecord, Snapshot, SnapshotError,
    StateReader, StateWriter, MAX_FRAME_LEN, SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
pub use sim::{
    clock_calendar_default, clock_specialization_default, QueueKind, RunLimit, RunSummary,
    Simulator, QUEUE_AUTO_WHEEL_COMPONENTS,
};
pub use stats::{FastPathStats, KernelStats};
pub use time::SimTime;
pub use trace::{TraceRecord, Tracer};
