//! Event queue.
//!
//! The kernel is driven by a priority queue of events keyed by
//! `(time, delta, seq)`:
//!
//! * `time` — the simulated tick the event fires at;
//! * `delta` — the delta cycle within that tick (SystemC-style evaluate /
//!   update micro-steps that consume no simulated time);
//! * `seq` — a monotonically increasing sequence number that makes ordering
//!   of simultaneous events *stable*: events scheduled first fire first.
//!
//! The stable ordering is what makes whole simulations bit-reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::component::ComponentId;
use crate::time::SimTime;

/// What an event does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// First wake of a component, at time zero.
    Start(ComponentId),
    /// Wake a component; the payload is an opaque tag the component chose
    /// when it scheduled the wake (see [`Ctx::schedule_in`]).
    ///
    /// [`Ctx::schedule_in`]: crate::Ctx::schedule_in
    Wake(ComponentId, u64),
    /// Wake a component because a signal it subscribed to changed.
    SignalWake(ComponentId, crate::signal::SignalId),
    /// Toggle kernel-managed clock number `usize`.
    ClockToggle(usize),
}

/// A scheduled event with its full ordering key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Simulated tick the event fires at.
    pub time: SimTime,
    /// Delta cycle within the tick.
    pub delta: u32,
    /// Stable tie-breaker: scheduling order.
    pub seq: u64,
    /// The action to perform.
    pub kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.time, other.delta, other.seq).cmp(&(self.time, self.delta, self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Min-queue of events ordered by `(time, delta, seq)`.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
    peak_len: usize,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules an event, assigning it the next sequence number.
    pub fn push(&mut self, time: SimTime, delta: u32, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event {
            time,
            delta,
            seq,
            kind,
        });
        self.peak_len = self.peak_len.max(self.heap.len());
    }

    /// The key of the earliest pending event, if any.
    pub fn peek_key(&self) -> Option<(SimTime, u32)> {
        self.heap.peek().map(|e| (e.time, e.delta))
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Pops the earliest event only if it fires exactly at `(time, delta)`.
    pub fn pop_at(&mut self, time: SimTime, delta: u32) -> Option<Event> {
        match self.heap.peek() {
            Some(e) if e.time == time && e.delta == delta => self.heap.pop(),
            _ => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Largest number of simultaneously pending events seen so far.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Total number of events ever scheduled.
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wake(c: usize) -> EventKind {
        EventKind::Wake(ComponentId::from_raw(c), 0)
    }

    #[test]
    fn orders_by_time_then_delta_then_seq() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ticks(5), 0, wake(0));
        q.push(SimTime::from_ticks(1), 2, wake(1));
        q.push(SimTime::from_ticks(1), 0, wake(2));
        q.push(SimTime::from_ticks(1), 0, wake(3));

        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order.len(), 4);
        // t=1,d=0 events first, in scheduling order (seq 2 then 3).
        assert_eq!(order[0].kind, wake(2));
        assert_eq!(order[1].kind, wake(3));
        assert_eq!(order[2].kind, wake(1)); // t=1, d=2
        assert_eq!(order[3].kind, wake(0)); // t=5
    }

    #[test]
    fn pop_at_only_matches_exact_key() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ticks(3), 1, wake(7));
        assert!(q.pop_at(SimTime::from_ticks(3), 0).is_none());
        assert!(q.pop_at(SimTime::from_ticks(2), 1).is_none());
        let e = q.pop_at(SimTime::from_ticks(3), 1).expect("event present");
        assert_eq!(e.kind, wake(7));
        assert!(q.is_empty());
    }

    #[test]
    fn counters_track_usage() {
        let mut q = EventQueue::new();
        assert_eq!(q.len(), 0);
        for i in 0..10 {
            q.push(SimTime::from_ticks(i), 0, wake(i as usize));
        }
        assert_eq!(q.len(), 10);
        assert_eq!(q.peak_len(), 10);
        assert_eq!(q.scheduled_total(), 10);
        while q.pop().is_some() {}
        assert_eq!(q.peak_len(), 10);
        assert!(q.is_empty());
    }

    #[test]
    fn peek_key_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_key(), None);
        q.push(SimTime::from_ticks(9), 3, wake(0));
        q.push(SimTime::from_ticks(2), 1, wake(1));
        assert_eq!(q.peek_key(), Some((SimTime::from_ticks(2), 1)));
    }
}
