//! Event queues.
//!
//! The kernel is driven by a priority queue of events keyed by
//! `(time, delta, seq)`:
//!
//! * `time` — the simulated tick the event fires at;
//! * `delta` — the delta cycle within that tick (SystemC-style evaluate /
//!   update micro-steps that consume no simulated time);
//! * `seq` — a monotonically increasing sequence number that makes ordering
//!   of simultaneous events *stable*: events scheduled first fire first.
//!
//! The stable ordering is what makes whole simulations bit-reproducible.
//!
//! ## Two implementations, one ordering
//!
//! Two queue types implement the same [`Queue`] interface; the
//! simulator's run loop is monomorphized once per implementation and the
//! live one is **auto-selected from a system-size hint** when the first
//! run starts (see `QueueKind` in `sim.rs`; the `wheel-queue` cargo
//! feature survives as a forced override pinning the wheel):
//!
//! * [`EventQueue`] — a plain binary heap. With the handful of pending
//!   events a small clocked co-simulation keeps (periodic clock toggles
//!   live in the simulator's *clock calendar*, not here, so the queue
//!   holds only component timers and the current delta cascade), the
//!   heap occupies a couple of cache lines and is unbeatable. It is
//!   also deliberately *simple*: the
//!   run-loop inlines these few instructions, and measurements showed
//!   that even one extra never-taken branch with a function call in its
//!   arm costs several percent of total simulation wall clock — which is
//!   why the choice between implementations is made **once per run
//!   call**, outside the per-event path, instead of adaptively inside
//!   it;
//! * [`WheelQueue`] — a hierarchical time wheel for big systems (many
//!   components, standing event populations in the hundreds or more):
//!   [`WHEEL_SLOTS`] single-tick buckets cover the ticks
//!   `[cursor, cursor + WHEEL_SLOTS)`; pushes append to their tick's
//!   bucket (kept `(delta, seq)`-sorted — appends are in-order under the
//!   kernel's monotone delta/seq discipline, so the sort is almost
//!   always a no-op), pops bump the bucket's head index, and an
//!   occupancy bitmap finds the earliest non-empty bucket in a few word
//!   scans. Events beyond the horizon (or, defensively, behind the
//!   cursor) live in an overflow heap. At thousands of pending events
//!   this turns the heap's `O(log n)` sift traffic into `O(1)` appends —
//!   3-4× faster on the queue-churn microbenches.
//!
//! **Determinism invariant:** both implementations order by the exact
//! same `(time, delta, seq)` key, and in the wheel every pop compares
//! the bucket candidate against the overflow top by that full key. The
//! pop sequence is therefore *identical* whichever implementation serves
//! it, and migrating pending events between them (preserving their
//! original sequence numbers) cannot change a simulation. The kernel's
//! determinism tests (`tests/determinism.rs`) and the randomized
//! cross-check below pin this down.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::component::ComponentId;
use crate::time::SimTime;

/// Number of single-tick buckets in the wheel (a power of two, at least
/// 64 so the occupancy bitmap has whole words).
///
/// Clock periods in this framework are a handful of ticks, so virtually
/// all scheduling lands within the horizon; far timers go to the overflow
/// heap and cost what they always did.
pub const WHEEL_SLOTS: usize = 256;

/// What an event does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// First wake of a component, at time zero.
    Start(ComponentId),
    /// Wake a component; the payload is an opaque tag the component chose
    /// when it scheduled the wake (see [`Ctx::schedule_in`]).
    ///
    /// [`Ctx::schedule_in`]: crate::Ctx::schedule_in
    Wake(ComponentId, u64),
    /// Wake a component because a signal it subscribed to changed.
    SignalWake(ComponentId, crate::signal::SignalId),
    /// Toggle kernel-managed clock number `usize`.
    ClockToggle(usize),
}

/// A scheduled event with its full ordering key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Simulated tick the event fires at.
    pub time: SimTime,
    /// Delta cycle within the tick.
    pub delta: u32,
    /// Stable tie-breaker: scheduling order.
    pub seq: u64,
    /// The action to perform.
    pub kind: EventKind,
}

impl Event {
    #[inline]
    fn key(&self) -> (SimTime, u32, u64) {
        (self.time, self.delta, self.seq)
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other.key().cmp(&self.key())
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The queue interface the simulator runs against. Implemented by
/// [`EventQueue`] (binary heap) and [`WheelQueue`] (time wheel); both
/// order by the exact `(time, delta, seq)` key.
pub trait Queue {
    /// Schedules an event, assigning it the next sequence number.
    fn push(&mut self, time: SimTime, delta: u32, kind: EventKind);
    /// Consumes the next sequence number *without* inserting an event.
    ///
    /// This is how the simulator's clock calendar stays order-compatible
    /// with the queue: a calendar toggle claims its sequence number at
    /// exactly the point the queued implementation would have pushed a
    /// `ClockToggle`, so merging the calendar head against the queue
    /// head by the full `(time, delta, seq)` key reproduces the queued
    /// dispatch order bit for bit (and [`scheduled_total`]
    /// (Self::scheduled_total) counts both kinds of scheduling).
    fn alloc_seq(&mut self) -> u64;
    /// The key of the earliest pending event, if any.
    fn peek_key(&self) -> Option<(SimTime, u32)>;
    /// The full `(time, delta, seq)` key of the earliest pending event
    /// (what the run loop compares the clock calendar's head against).
    fn peek_full_key(&self) -> Option<(SimTime, u32, u64)>;
    /// Pops the earliest event.
    fn pop(&mut self) -> Option<Event>;
    /// Pops the earliest event only if it fires exactly at `(time, delta)`.
    ///
    /// Not on the run loop's hot path anymore (it merges the calendar
    /// against [`peek_full_key`](Self::peek_full_key) and then calls
    /// [`pop`](Self::pop)); kept as the safe conditional-pop for tests
    /// and external drivers. Must keep matching the run loop's
    /// only-the-global-minimum semantics (see the wheel's cursor note).
    fn pop_at(&mut self, time: SimTime, delta: u32) -> Option<Event>;
    /// Number of pending events.
    fn len(&self) -> usize;
    /// Whether no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Largest number of simultaneously pending events seen so far.
    fn peak_len(&self) -> usize;
    /// Total number of events ever scheduled.
    fn scheduled_total(&self) -> u64;
    /// Re-inserts an event that already carries its sequence number
    /// (queue-to-queue migration; never changes the pop order).
    fn push_event(&mut self, ev: Event);
    /// Hands the internal sequence counter to a successor queue.
    fn set_next_seq(&mut self, next_seq: u64);
    /// Moves every pending event out, earliest first (queue-to-queue
    /// migration; re-insert with [`push_event`](Self::push_event),
    /// then hand over the counter with
    /// [`set_next_seq`](Self::set_next_seq)).
    fn drain_ordered(&mut self) -> Vec<Event> {
        let mut events = Vec::with_capacity(self.len());
        while let Some(ev) = self.pop() {
            events.push(ev);
        }
        events
    }
}

/// Min-queue of events ordered by `(time, delta, seq)`, as a plain
/// binary heap — the right structure for small event populations (see
/// the module docs).
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
    peak_len: usize,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Queue for EventQueue {
    #[inline]
    fn push(&mut self, time: SimTime, delta: u32, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event {
            time,
            delta,
            seq,
            kind,
        });
        self.peak_len = self.peak_len.max(self.heap.len());
    }

    #[inline]
    fn alloc_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    #[inline]
    fn peek_key(&self) -> Option<(SimTime, u32)> {
        self.heap.peek().map(|e| (e.time, e.delta))
    }

    #[inline]
    fn peek_full_key(&self) -> Option<(SimTime, u32, u64)> {
        self.heap.peek().map(|e| e.key())
    }

    #[inline]
    fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    #[inline]
    fn pop_at(&mut self, time: SimTime, delta: u32) -> Option<Event> {
        match self.heap.peek() {
            Some(e) if e.time == time && e.delta == delta => self.heap.pop(),
            _ => None,
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.heap.len()
    }

    fn peak_len(&self) -> usize {
        self.peak_len
    }

    fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    fn push_event(&mut self, ev: Event) {
        self.heap.push(ev);
        self.peak_len = self.peak_len.max(self.heap.len());
    }

    fn set_next_seq(&mut self, next_seq: u64) {
        self.next_seq = next_seq;
    }
}

/// One tick's bucket: events sorted by `(delta, seq)`, consumed from
/// `head`. The `Vec` keeps its capacity across reuses of the slot.
#[derive(Debug, Default)]
struct Slot {
    events: Vec<Event>,
    head: usize,
}

impl Slot {
    #[inline]
    fn is_drained(&self) -> bool {
        self.head >= self.events.len()
    }

    #[inline]
    fn peek(&self) -> Option<&Event> {
        self.events.get(self.head)
    }

    fn insert(&mut self, ev: Event) {
        // The kernel schedules with monotone (delta, seq) within a tick,
        // so the append path is the overwhelmingly common case.
        match self.events.last() {
            Some(last) if last.key() > ev.key() => {
                // Out-of-order push: place it by key among the *pending*
                // events (the consumed prefix before `head` is dead and
                // not necessarily key-partitioned against new arrivals).
                let pos = self.head
                    + self.events[self.head..].partition_point(|e| e.key() <= ev.key());
                self.events.insert(pos, ev);
            }
            _ => self.events.push(ev),
        }
    }

    fn pop(&mut self) -> Event {
        let ev = self.events[self.head];
        self.head += 1;
        if self.is_drained() {
            self.events.clear();
            self.head = 0;
        }
        ev
    }
}

/// Min-queue of events ordered by `(time, delta, seq)`, as a hierarchical
/// time wheel with an overflow heap — the right structure for large event
/// populations (see the module docs).
#[derive(Debug)]
pub struct WheelQueue {
    slots: Vec<Slot>,
    /// One bit per slot: set while the slot holds pending events.
    occupied: Vec<u64>,
    /// Start of the wheel horizon, in ticks. Only ever advances (to the
    /// tick of the last popped event).
    cursor: u64,
    /// Events outside `[cursor, cursor + WHEEL_SLOTS)`.
    overflow: BinaryHeap<Event>,
    len: usize,
    next_seq: u64,
    peak_len: usize,
}

impl Default for WheelQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl WheelQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        const { assert!(WHEEL_SLOTS.is_power_of_two() && WHEEL_SLOTS >= 64) };
        WheelQueue {
            slots: (0..WHEEL_SLOTS).map(|_| Slot::default()).collect(),
            occupied: vec![0; WHEEL_SLOTS / 64],
            cursor: 0,
            overflow: BinaryHeap::new(),
            len: 0,
            next_seq: 0,
            peak_len: 0,
        }
    }

    /// Anchors the horizon (used when migrating from a heap queue: the
    /// earliest pending tick becomes the wheel's start of time).
    pub fn set_cursor(&mut self, tick: u64) {
        debug_assert!(self.len == 0, "anchor before inserting events");
        self.cursor = tick;
    }

    #[inline]
    fn slot_index(tick: u64) -> usize {
        (tick as usize) & (WHEEL_SLOTS - 1)
    }

    #[inline]
    fn mark_occupied(&mut self, slot: usize) {
        self.occupied[slot / 64] |= 1u64 << (slot % 64);
    }

    #[inline]
    fn mark_drained(&mut self, slot: usize) {
        self.occupied[slot / 64] &= !(1u64 << (slot % 64));
    }

    #[inline]
    fn in_horizon(&self, tick: u64) -> bool {
        tick >= self.cursor && tick < self.cursor + WHEEL_SLOTS as u64
    }

    /// Earliest pending bucket event and the slot holding it.
    ///
    /// Fast path: the cursor's own slot — every bucket event is at tick
    /// `>= cursor`, and a non-drained cursor slot holds exactly tick
    /// `cursor`, so it is the earliest by construction. During delta
    /// processing (the overwhelmingly common peek) this is two loads.
    /// Otherwise the occupancy bitmap is scanned word by word.
    fn earliest(&self) -> Option<(&Event, usize)> {
        let start = Self::slot_index(self.cursor);
        if let Some(e) = self.slots[start].peek() {
            return Some((e, start));
        }
        let words = self.occupied.len(); // power of two
        let (sw, sb) = (start / 64, (start % 64) as u32);
        // Bits strictly above `start` in its word (`start` itself was just
        // checked); the double shift avoids overflow when sb == 63.
        let first = (self.occupied[sw] >> sb) >> 1;
        if first != 0 {
            let slot = (start + 1 + first.trailing_zeros() as usize) & (WHEEL_SLOTS - 1);
            return self.slots[slot].peek().map(|e| (e, slot));
        }
        for k in 1..=words {
            let wi = (sw + k) & (words - 1);
            let w = self.occupied[wi];
            if w != 0 {
                let slot = wi * 64 + w.trailing_zeros() as usize;
                return self.slots[slot].peek().map(|e| (e, slot));
            }
        }
        None
    }

    /// Key and location of the globally earliest pending event:
    /// `Some(slot)` for a bucket event, `None` for the overflow top.
    /// Returns owned data so callers can mutate immediately after.
    fn earliest_loc(&self) -> Option<((SimTime, u32, u64), Option<usize>)> {
        let bucket = self.earliest().map(|(e, slot)| (e.key(), Some(slot)));
        let over = self.overflow.peek().map(|e| (e.key(), None));
        match (bucket, over) {
            (Some(b), Some(o)) => Some(if b.0 <= o.0 { b } else { o }),
            (b, o) => b.or(o),
        }
    }

    fn pop_slot(&mut self, slot: usize) -> Event {
        self.len -= 1;
        let ev = self.slots[slot].pop();
        if self.slots[slot].is_drained() {
            self.mark_drained(slot);
        }
        self.cursor = self.cursor.max(ev.time.ticks());
        ev
    }

    fn pop_overflow(&mut self) -> Event {
        self.len -= 1;
        let ev = self.overflow.pop().expect("peeked");
        self.cursor = self.cursor.max(ev.time.ticks());
        ev
    }
}

impl Queue for WheelQueue {
    #[inline]
    fn push(&mut self, time: SimTime, delta: u32, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.push_event(Event {
            time,
            delta,
            seq,
            kind,
        });
    }

    fn push_event(&mut self, ev: Event) {
        let tick = ev.time.ticks();
        if self.in_horizon(tick) {
            let slot = Self::slot_index(tick);
            debug_assert!(
                self.slots[slot].peek().is_none_or(|e| e.time == ev.time),
                "wheel slot holds a single tick"
            );
            self.slots[slot].insert(ev);
            self.mark_occupied(slot);
        } else {
            // Beyond the horizon (or defensively behind the cursor).
            self.overflow.push(ev);
        }
        self.len += 1;
        self.peak_len = self.peak_len.max(self.len);
    }

    #[inline]
    fn alloc_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    #[inline]
    fn peek_key(&self) -> Option<(SimTime, u32)> {
        self.earliest_loc().map(|(key, _)| (key.0, key.1))
    }

    #[inline]
    fn peek_full_key(&self) -> Option<(SimTime, u32, u64)> {
        self.earliest_loc().map(|(key, _)| key)
    }

    #[inline]
    fn pop(&mut self) -> Option<Event> {
        let (_, loc) = self.earliest_loc()?;
        Some(match loc {
            Some(slot) => self.pop_slot(slot),
            None => self.pop_overflow(),
        })
    }

    #[inline]
    fn pop_at(&mut self, time: SimTime, delta: u32) -> Option<Event> {
        // Pop only the *globally earliest* event, and only if it matches —
        // the same contract as the heap implementation. Popping a matching
        // but non-minimal event would also advance the cursor past pending
        // earlier ticks and corrupt the horizon.
        let (key, loc) = self.earliest_loc()?;
        if key.0 != time || key.1 != delta {
            return None;
        }
        Some(match loc {
            Some(slot) => self.pop_slot(slot),
            None => self.pop_overflow(),
        })
    }

    #[inline]
    fn len(&self) -> usize {
        self.len
    }

    fn peak_len(&self) -> usize {
        self.peak_len
    }

    fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    fn set_next_seq(&mut self, next_seq: u64) {
        self.next_seq = next_seq;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wake(c: usize) -> EventKind {
        EventKind::Wake(ComponentId::from_raw(c), 0)
    }

    /// Runs the same scenario against both queue implementations.
    fn with_both(f: impl Fn(&mut dyn Queue)) {
        f(&mut EventQueue::new());
        f(&mut WheelQueue::new());
    }

    #[test]
    fn orders_by_time_then_delta_then_seq() {
        with_both(|q| {
            q.push(SimTime::from_ticks(5), 0, wake(0));
            q.push(SimTime::from_ticks(1), 2, wake(1));
            q.push(SimTime::from_ticks(1), 0, wake(2));
            q.push(SimTime::from_ticks(1), 0, wake(3));

            let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
            assert_eq!(order.len(), 4);
            // t=1,d=0 events first, in scheduling order (seq 2 then 3).
            assert_eq!(order[0].kind, wake(2));
            assert_eq!(order[1].kind, wake(3));
            assert_eq!(order[2].kind, wake(1)); // t=1, d=2
            assert_eq!(order[3].kind, wake(0)); // t=5
        });
    }

    #[test]
    fn pop_at_only_matches_exact_key() {
        with_both(|q| {
            q.push(SimTime::from_ticks(3), 1, wake(7));
            assert!(q.pop_at(SimTime::from_ticks(3), 0).is_none());
            assert!(q.pop_at(SimTime::from_ticks(2), 1).is_none());
            let e = q.pop_at(SimTime::from_ticks(3), 1).expect("event present");
            assert_eq!(e.kind, wake(7));
            assert!(q.is_empty());
        });
    }

    #[test]
    fn pop_at_refuses_non_minimal_matches() {
        // A matching (time, delta) that is not the globally earliest
        // pending event must not pop — otherwise the wheel's cursor would
        // advance past still-pending ticks.
        with_both(|q| {
            q.push(SimTime::from_ticks(10), 0, wake(0));
            q.push(SimTime::from_ticks(20), 0, wake(1));
            q.push(SimTime::from_ticks(25), 0, wake(2));
            assert!(
                q.pop_at(SimTime::from_ticks(20), 0).is_none(),
                "tick 20 matches an event but tick 10 is earlier"
            );
            // Full order still intact.
            let order: Vec<_> = std::iter::from_fn(|| q.pop())
                .map(|e| e.time.ticks())
                .collect();
            assert_eq!(order, vec![10, 20, 25]);
        });
    }

    #[test]
    fn counters_track_usage() {
        with_both(|q| {
            assert_eq!(q.len(), 0);
            for i in 0..10 {
                q.push(SimTime::from_ticks(i), 0, wake(i as usize));
            }
            assert_eq!(q.len(), 10);
            assert_eq!(q.peak_len(), 10);
            assert_eq!(q.scheduled_total(), 10);
            while q.pop().is_some() {}
            assert_eq!(q.peak_len(), 10);
            assert!(q.is_empty());
        });
    }

    #[test]
    fn peek_key_reports_earliest() {
        with_both(|q| {
            assert_eq!(q.peek_key(), None);
            q.push(SimTime::from_ticks(9), 3, wake(0));
            q.push(SimTime::from_ticks(2), 1, wake(1));
            assert_eq!(q.peek_key(), Some((SimTime::from_ticks(2), 1)));
        });
    }

    #[test]
    fn heap_drain_ordered_is_sorted_and_preserves_seq() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ticks(9), 0, wake(0));
        q.push(SimTime::from_ticks(2), 1, wake(1));
        q.push(SimTime::from_ticks(2), 0, wake(2));
        let drained = q.drain_ordered();
        let keys: Vec<_> = drained.iter().map(|e| e.key()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert_eq!(drained.len(), 3);
        assert_eq!(drained[0].kind, wake(2));
        assert_eq!(drained[0].seq, 2, "original seq preserved");
    }

    #[test]
    fn migration_between_queues_preserves_order() {
        // Fill a heap, migrate into a wheel mid-stream, keep popping: the
        // combined pop sequence must equal the pure-heap sequence.
        let mut reference = EventQueue::new();
        let mut source = EventQueue::new();
        for i in 0..100usize {
            let t = (i as u64 * 13) % 40;
            let d = (i % 3) as u32;
            reference.push(SimTime::from_ticks(t), d, wake(i));
            source.push(SimTime::from_ticks(t), d, wake(i));
        }
        let mut popped = Vec::new();
        for _ in 0..30 {
            popped.push(source.pop().unwrap());
        }
        let mut wheel = WheelQueue::new();
        // Anchor the horizon at the earliest pending tick before
        // re-inserting (the documented migration recipe).
        wheel.set_cursor(source.peek_key().map(|(t, _)| t.ticks()).unwrap_or(0));
        for ev in source.drain_ordered() {
            wheel.push_event(ev);
        }
        wheel.set_next_seq(source.scheduled_total());
        while let Some(e) = wheel.pop() {
            popped.push(e);
        }
        let expect: Vec<_> = std::iter::from_fn(|| reference.pop()).collect();
        assert_eq!(
            popped.iter().map(|e| (e.key(), e.kind)).collect::<Vec<_>>(),
            expect.iter().map(|e| (e.key(), e.kind)).collect::<Vec<_>>()
        );
        // Seq continuity after migration.
        wheel.push(SimTime::from_ticks(1000), 0, wake(7));
        assert_eq!(wheel.pop().unwrap().seq, 100);
    }

    #[test]
    fn far_events_cross_the_horizon() {
        // Events beyond the wheel horizon live in the overflow heap and
        // still pop in exact order once the cursor approaches them.
        let mut q = WheelQueue::new();
        let far = WHEEL_SLOTS as u64 * 3 + 17;
        q.push(SimTime::from_ticks(far), 0, wake(1));
        q.push(SimTime::from_ticks(far), 0, wake(2));
        q.push(SimTime::from_ticks(1), 0, wake(0));
        q.push(SimTime::from_ticks(far + 1), 0, wake(3));
        assert_eq!(q.peek_key(), Some((SimTime::from_ticks(1), 0)));
        assert_eq!(q.pop().unwrap().kind, wake(0));
        assert_eq!(q.pop().unwrap().kind, wake(1));
        assert_eq!(q.pop().unwrap().kind, wake(2));
        // After the cursor jumped to `far`, near pushes re-enter the wheel.
        q.push(SimTime::from_ticks(far + 1), 0, wake(4));
        assert_eq!(q.pop().unwrap().kind, wake(3), "seq order preserved");
        assert_eq!(q.pop().unwrap().kind, wake(4));
        assert!(q.pop().is_none());
    }

    #[test]
    fn same_key_split_across_wheel_and_overflow_pops_in_seq_order() {
        // An event pushed while far (overflow) and one pushed later while
        // near (bucket) at the same (time, delta) must pop in seq order.
        let mut q = WheelQueue::new();
        let t = WHEEL_SLOTS as u64 + 5;
        q.push(SimTime::from_ticks(t), 0, wake(1)); // overflow, seq 0
        q.push(SimTime::from_ticks(t - WHEEL_SLOTS as u64), 0, wake(0));
        assert_eq!(q.pop().unwrap().kind, wake(0)); // cursor -> t - WHEEL_SLOTS
        // `t` is now within the horizon: this one goes to a bucket.
        q.push(SimTime::from_ticks(t), 0, wake(2)); // seq 2
        let a = q.pop_at(SimTime::from_ticks(t), 0).unwrap();
        let b = q.pop_at(SimTime::from_ticks(t), 0).unwrap();
        assert_eq!(a.kind, wake(1), "overflow event was scheduled first");
        assert_eq!(b.kind, wake(2));
    }

    #[test]
    fn wheel_matches_heap_on_random_workload() {
        // Deterministic pseudo-random interleaving of pushes and pops with
        // near, far and same-tick events: the pop sequences (full keys and
        // kinds) must be identical.
        let mut lcg: u64 = 0x1234_5678;
        let mut rand = move || {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            lcg >> 33
        };
        let mut wheel = WheelQueue::new();
        let mut heap = EventQueue::new();
        let mut now = 0u64;
        for i in 0..30_000usize {
            let r = rand();
            if r % 3 != 0 || wheel.is_empty() {
                let ahead = match r % 7 {
                    0 => rand() % 4,                         // same few ticks
                    1..=4 => rand() % 64,                    // near
                    5 => WHEEL_SLOTS as u64 + rand() % 5000, // far
                    _ => rand() % (2 * WHEEL_SLOTS as u64),  // straddling
                };
                let delta = (rand() % 3) as u32;
                wheel.push(SimTime::from_ticks(now + ahead), delta, wake(i));
                heap.push(SimTime::from_ticks(now + ahead), delta, wake(i));
            } else {
                let a = wheel.pop();
                let b = heap.pop();
                assert_eq!(
                    a.map(|e| (e.key(), e.kind)),
                    b.map(|e| (e.key(), e.kind)),
                    "pop {i} diverged"
                );
                if let Some(e) = a {
                    now = e.time.ticks();
                }
            }
        }
        loop {
            let a = wheel.pop();
            let b = heap.pop();
            assert_eq!(a.map(|e| (e.key(), e.kind)), b.map(|e| (e.key(), e.kind)));
            if a.is_none() {
                break;
            }
        }
    }
}
