//! The simulator: owns components, signals, clocks and the event loop.

use std::time::{Duration, Instant};

use crate::component::{Component, ComponentId, Wake};
use crate::ctx::{Ctx, StopReason};
use crate::event::{EventKind, Queue};

use crate::event::{Event, EventQueue, WheelQueue};
use crate::signal::{Change, Edge, SignalBoard, Wire};
use crate::stats::{FastPathStats, KernelStats};
use crate::time::SimTime;
use crate::trace::Tracer;

/// When a [`Simulator::run`] call must stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Deadline {
    /// Absolute simulated time (inclusive of events at earlier times,
    /// exclusive of events after it).
    Absolute(SimTime),
    /// Resolved against the current simulation time when the run starts.
    TicksFromNow(u64),
}

/// How long a [`Simulator::run`] call may execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunLimit {
    deadline: Deadline,
    /// Maximum number of events to dispatch in this call, as a safety net
    /// for runaway models. `u64::MAX` means unlimited.
    max_events: u64,
}

impl RunLimit {
    /// Run for `ticks` ticks past the simulation time current when
    /// [`Simulator::run`] is called (resolved at that point, so the same
    /// limit value can be reused across consecutive runs).
    pub fn for_ticks(ticks: u64) -> Self {
        RunLimit {
            deadline: Deadline::TicksFromNow(ticks),
            max_events: u64::MAX,
        }
    }

    /// Run until the given absolute time.
    pub fn until(deadline: SimTime) -> Self {
        RunLimit {
            deadline: Deadline::Absolute(deadline),
            max_events: u64::MAX,
        }
    }

    /// Run until a component stops the simulation or the queue drains.
    pub fn unbounded() -> Self {
        RunLimit {
            deadline: Deadline::Absolute(SimTime::MAX),
            max_events: u64::MAX,
        }
    }

    /// Caps the number of dispatched events.
    pub fn with_max_events(mut self, max_events: u64) -> Self {
        self.max_events = max_events;
        self
    }

    /// The absolute deadline this limit means when starting from `now`.
    fn resolve(&self, now: SimTime) -> SimTime {
        match self.deadline {
            Deadline::Absolute(t) => t,
            Deadline::TicksFromNow(ticks) => now.saturating_add(ticks),
        }
    }
}

/// Result of one [`Simulator::run`] call.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Simulated time when the run ended.
    pub end_time: SimTime,
    /// Counter deltas for this run only.
    pub stats: KernelStats,
    /// Host wall-clock time the run took.
    pub wall: Duration,
    /// Why the run ended early, if a component stopped it.
    pub stop: Option<StopReason>,
}

impl RunSummary {
    /// Simulated ticks per host second — the *simulation speed* metric the
    /// paper's evaluation reports (higher is better).
    pub fn ticks_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            f64::INFINITY
        } else {
            self.end_time.ticks() as f64 / secs
        }
    }

    /// Whether the run ended because a component signalled an error.
    pub fn is_error(&self) -> bool {
        self.stop.as_ref().is_some_and(StopReason::is_error)
    }
}

#[derive(Debug)]
struct ClockDef {
    wire: Wire,
    half_period: u64,
}

/// One clock's pending toggle in the clock calendar: when it fires and
/// the *virtual* sequence number it holds in the global scheduling
/// order. `None` while the toggle is parked in the event queue instead
/// (calendar disabled).
type CalendarSlot = Option<(SimTime, u64)>;

/// Which event-queue implementation the run loop executes against.
///
/// Both implementations order by the exact `(time, delta, seq)` key, so a
/// simulation is **bit-identical** whichever one serves it (see the
/// `event` module docs and `tests/determinism.rs`); the choice is purely
/// a host-performance one:
///
/// * [`Heap`](QueueKind::Heap) — the binary heap. With the single-digit
///   standing event population a clocked co-simulation keeps (periodic
///   toggles live in the clock calendar and subscriber wakes are
///   *carried*, so the queue holds only component timers and the current
///   delta cascade), it occupies a couple of cache lines and is
///   unbeatable.
/// * [`Wheel`](QueueKind::Wheel) — the hierarchical time wheel, which
///   turns the heap's `O(log n)` sift traffic into `O(1)` bucket appends.
///   It wins only once the *standing* population is large (measured
///   crossover ≈ 64 pending events on the `event_queue_hold` microbench),
///   i.e. systems with very many concurrently scheduled timers.
///
/// By default the simulator picks automatically when the first run
/// starts, from the system-size hint described on
/// [`Simulator::set_queue_kind`]. The run loop is compiled **once per
/// implementation** (two monomorphizations of the same generic loop,
/// selected once per `run` call, never per event), so one binary serves
/// both without per-event dispatch overhead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueKind {
    /// Binary-heap queue ([`EventQueue`]) — small standing populations.
    Heap,
    /// Time-wheel queue ([`WheelQueue`]) — large standing populations.
    Wheel,
}

/// Component count at or above which the automatic queue selection picks
/// the time wheel.
///
/// The hint errs high on purpose: since subscriber wakes are carried
/// between deltas instead of queued, even a 256-component clocked system
/// keeps a single-digit standing event population, and the binary heap
/// measures at or ahead of the wheel there
/// (`kernel_1k_cycles_256_components`). Only systems big enough to
/// plausibly hold tens of concurrent timers get the wheel by default;
/// anything with a known queue-heavy schedule can pin
/// [`QueueKind::Wheel`] explicitly.
pub const QUEUE_AUTO_WHEEL_COMPONENTS: usize = 512;

/// The queue slot: exactly one of the two implementations is live.
#[derive(Debug)]
enum QueueSlot {
    Heap(EventQueue),
    Wheel(WheelQueue),
}

impl QueueSlot {
    fn kind(&self) -> QueueKind {
        match self {
            QueueSlot::Heap(_) => QueueKind::Heap,
            QueueSlot::Wheel(_) => QueueKind::Wheel,
        }
    }

    /// Build-phase push (cold: component registration and clock setup).
    fn push(&mut self, time: SimTime, delta: u32, kind: EventKind) {
        match self {
            QueueSlot::Heap(q) => q.push(time, delta, kind),
            QueueSlot::Wheel(q) => q.push(time, delta, kind),
        }
    }

    /// Build-phase sequence-number claim (clock setup with the calendar
    /// enabled: the toggle takes a number but no queue slot).
    fn alloc_seq(&mut self) -> u64 {
        match self {
            QueueSlot::Heap(q) => q.alloc_seq(),
            QueueSlot::Wheel(q) => q.alloc_seq(),
        }
    }
}

/// Default for the kernel's clocked-path specialization (the
/// edge-summary commit skip and the batched same-edge dispatch), read
/// from the `DMI_KERNEL_SPECIALIZE` environment variable: `0` or `off`
/// selects the unspecialized reference path. On by default.
///
/// The reference path is kept purely so differential tests (and CI) can
/// pin the specialized path bit-identical to it — like `DMI_PREDECODE=0`
/// for the ISS dispatch engines.
pub fn clock_specialization_default() -> bool {
    match std::env::var("DMI_KERNEL_SPECIALIZE") {
        Ok(v) => !(v == "0" || v.eq_ignore_ascii_case("off")),
        Err(_) => true,
    }
}

/// Default for the clock calendar (periodic toggles held in per-clock
/// slots compared against the event-queue head instead of round-tripping
/// through the queue), read from the `DMI_CLOCK_CALENDAR` environment
/// variable: `0` or `off` selects the queued reference path. On by
/// default.
///
/// Like `DMI_KERNEL_SPECIALIZE` and `DMI_PREDECODE`, the knob exists for
/// A/B measurement and differential testing — the simulation is
/// bit-identical either way (`tests/clock_specialization.rs`).
pub fn clock_calendar_default() -> bool {
    match std::env::var("DMI_CLOCK_CALENDAR") {
        Ok(v) => !(v == "0" || v.eq_ignore_ascii_case("off")),
        Err(_) => true,
    }
}

/// Discrete-event simulator with SystemC-style delta cycles.
///
/// Build phase: declare signals with [`wire`](Self::wire), register
/// components with [`add_component`](Self::add_component), connect
/// sensitivities with [`subscribe`](Self::subscribe) and create clocks with
/// [`add_clock`](Self::add_clock). Run phase: [`run_for`](Self::run_for) /
/// [`run`](Self::run).
///
/// # Examples
///
/// ```
/// use dmi_kernel::{Component, Ctx, Edge, Simulator, Wake};
///
/// /// Toggles its output on every rising clock edge.
/// struct Blinker {
///     clk: dmi_kernel::Wire,
///     out: dmi_kernel::Wire,
///     state: bool,
/// }
/// impl Component for Blinker {
///     fn name(&self) -> &str { "blinker" }
///     fn wake(&mut self, ctx: &mut Ctx<'_>) {
///         if ctx.is_signal(self.clk) {
///             self.state = !self.state;
///             ctx.write_bit(self.out, self.state);
///         }
///     }
///     fn as_any(&self) -> &dyn std::any::Any { self }
///     fn as_any_mut(&mut self) -> &mut dyn std::any::Any { self }
/// }
///
/// let mut sim = Simulator::new();
/// let clk = sim.add_clock("clk", 10);
/// let out = sim.wire("out", 1);
/// let id = sim.add_component(Box::new(Blinker { clk, out, state: false }));
/// sim.subscribe(id, clk, Edge::Rising);
/// sim.run_for(100);
/// assert!(sim.stats().wakes > 5);
/// ```
#[derive(Debug)]
pub struct Simulator {
    comps: Vec<Option<Box<dyn Component>>>,
    comp_names: Vec<String>,
    signals: SignalBoard,
    queue: QueueSlot,
    /// Explicit or auto-decided queue implementation; `None` until the
    /// first run (or an explicit [`set_queue_kind`]
    /// (Self::set_queue_kind)) pins it.
    queue_choice: Option<QueueKind>,
    clocks: Vec<ClockDef>,
    time: SimTime,
    stop: Option<StopReason>,
    stats: KernelStats,
    tracer: Tracer,
    delta_limit: u32,
    /// Whether the clocked-path specialization (edge-summary commit
    /// skip and batched same-edge dispatch) is active; the `false` path
    /// is the unspecialized reference implementation kept for
    /// differential testing. See [`clock_specialization_default`].
    specialize: bool,
    /// Whether periodic clock toggles are held in the calendar (the
    /// default) or round-trip through the event queue (the reference
    /// path kept for differential testing). See
    /// [`clock_calendar_default`].
    calendar_on: bool,
    /// Per-clock next-toggle slots, parallel to `clocks`. A slot holds
    /// the toggle's fire time and its *virtual* sequence number —
    /// claimed from the queue's counter at exactly the point the queued
    /// path would have pushed the `ClockToggle`, so merging the calendar
    /// head against the queue head by the full `(time, delta, seq)` key
    /// reproduces the queued dispatch order bit for bit.
    calendar: Vec<CalendarSlot>,
    /// Fast-path counters (observability for tests and tuning; not part
    /// of [`KernelStats`], which must be identical with the fast paths
    /// on or off — see [`FastPathStats`]).
    fast: FastPathStats,
    // Scratch buffers reused across deltas to avoid per-cycle allocation.
    changes: Vec<Change>,
    woken: Vec<bool>,
    woken_list: Vec<ComponentId>,
    /// Signal wakes produced by the current delta's update phase, carried
    /// directly to the next delta instead of through the event queue.
    /// Dispatch order is identical (queued timers at `(t, delta + 1)`
    /// always precede the update phase's wakes in sequence number), but
    /// the ~one-wake-per-subscriber-per-edge traffic skips the priority
    /// queue entirely — the single hottest path of clocked systems.
    pending_wakes: Vec<(ComponentId, crate::signal::SignalId)>,
    /// Clock wires whose current-delta toggle was proven unobservable
    /// (no matching edge subscriber, no tracer, no competing write) and
    /// deferred to the update phase as a quiet in-place flip.
    fast_toggles: Vec<Wire>,
}

impl std::fmt::Debug for dyn Component {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Component({})", self.name())
    }
}

impl Default for Simulator {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulator {
    /// Creates an empty simulator.
    pub fn new() -> Self {
        Simulator {
            comps: Vec::new(),
            comp_names: Vec::new(),
            signals: SignalBoard::new(),
            queue: QueueSlot::Heap(EventQueue::new()),
            queue_choice: None,
            clocks: Vec::new(),
            time: SimTime::ZERO,
            stop: None,
            stats: KernelStats::default(),
            tracer: Tracer::new(),
            delta_limit: 10_000,
            specialize: clock_specialization_default(),
            calendar_on: clock_calendar_default(),
            calendar: Vec::new(),
            fast: FastPathStats::default(),
            changes: Vec::new(),
            woken: Vec::new(),
            woken_list: Vec::new(),
            pending_wakes: Vec::new(),
            fast_toggles: Vec::new(),
        }
    }

    /// The queue implementation currently live (before the first run this
    /// is the build-phase staging queue; the pinned choice is made when
    /// [`run`](Self::run) first executes, unless set explicitly).
    pub fn queue_kind(&self) -> QueueKind {
        self.queue.kind()
    }

    /// Pins the event-queue implementation, migrating any pending events
    /// (original sequence numbers preserved, so the pop order — and hence
    /// the simulation — cannot change; see `tests/determinism.rs`).
    ///
    /// Without an explicit choice, the first [`run`](Self::run) call
    /// auto-selects from a system-size hint: the time wheel when at least
    /// [`QUEUE_AUTO_WHEEL_COMPONENTS`] components are registered (or
    /// always, when the `wheel-queue` cargo feature forces it), the
    /// binary heap otherwise. The rationale for the threshold is on
    /// [`QueueKind`].
    pub fn set_queue_kind(&mut self, kind: QueueKind) {
        self.queue_choice = Some(kind);
        self.migrate_queue(kind);
    }

    /// Enables or disables the clocked-path specialization (A/B and
    /// differential testing; results are bit-identical either way).
    /// Defaults from the `DMI_KERNEL_SPECIALIZE` environment variable —
    /// see [`clock_specialization_default`].
    pub fn set_clock_specialization(&mut self, on: bool) {
        self.specialize = on;
    }

    /// Number of clock toggles that took the quiet fast path (skipped
    /// commit scan and wake pass) across all runs.
    pub fn quiet_toggles(&self) -> u64 {
        self.fast.quiet_toggles
    }

    /// Number of clock toggles dispatched from the calendar (never
    /// entering the event queue) across all runs.
    pub fn calendar_toggles(&self) -> u64 {
        self.fast.calendar_toggles
    }

    /// Cumulative fast-path counters across all runs (total toggles,
    /// quiet flips, calendar dispatches). Unlike [`stats`](Self::stats),
    /// these *describe which path ran* and so legitimately differ
    /// between the reference and fast configurations.
    pub fn fast_path_stats(&self) -> FastPathStats {
        self.fast
    }

    /// Whether the clock calendar is active.
    pub fn clock_calendar(&self) -> bool {
        self.calendar_on
    }

    /// Enables or disables the clock calendar (A/B and differential
    /// testing; results are bit-identical either way — defaults from the
    /// `DMI_CLOCK_CALENDAR` environment variable, see
    /// [`clock_calendar_default`]).
    ///
    /// Pending toggles migrate between the queue and the calendar with
    /// their original `(time, seq)` keys, so switching between runs —
    /// even mid-simulation — cannot change the dispatch order.
    pub fn set_clock_calendar(&mut self, on: bool) {
        if self.calendar_on == on {
            return;
        }
        self.calendar_on = on;
        if on {
            // Queue → calendar: lift every pending `ClockToggle` into
            // its clock's slot; everything else is re-inserted with its
            // original sequence number (same recipe as `migrate_queue`).
            let kind = self.queue.kind();
            let (events, next_seq) = self.drain_queue();
            let keep: Vec<Event> = events
                .into_iter()
                .filter(|ev| match ev.kind {
                    EventKind::ClockToggle(k) => {
                        debug_assert!(self.calendar[k].is_none(), "one toggle per clock");
                        self.calendar[k] = Some((ev.time, ev.seq));
                        false
                    }
                    _ => true,
                })
                .collect();
            self.rebuild_queue(kind, keep, next_seq);
        } else {
            // Calendar → queue: park every slot as an ordinary event.
            for (k, slot) in self.calendar.iter_mut().enumerate() {
                if let Some((time, seq)) = slot.take() {
                    let ev = Event {
                        time,
                        delta: 0,
                        seq,
                        kind: EventKind::ClockToggle(k),
                    };
                    match &mut self.queue {
                        QueueSlot::Heap(q) => q.push_event(ev),
                        QueueSlot::Wheel(q) => q.push_event(ev),
                    }
                }
            }
        }
    }

    /// The queue kind the auto-selection hint resolves to right now.
    fn auto_queue_kind(&self) -> QueueKind {
        if cfg!(feature = "wheel-queue") || self.comps.len() >= QUEUE_AUTO_WHEEL_COMPONENTS {
            QueueKind::Wheel
        } else {
            QueueKind::Heap
        }
    }

    /// Moves every pending event out of the live queue, earliest first,
    /// along with the sequence counter to hand to the successor queue.
    fn drain_queue(&mut self) -> (Vec<Event>, u64) {
        match &mut self.queue {
            QueueSlot::Heap(q) => (q.drain_ordered(), q.scheduled_total()),
            QueueSlot::Wheel(q) => (q.drain_ordered(), q.scheduled_total()),
        }
    }

    /// Replaces the live queue with a fresh one of `kind` holding
    /// `events` (original sequence numbers preserved) and the inherited
    /// counter — the single migration recipe shared by queue-kind
    /// switches and calendar enablement, so the cursor-anchoring and
    /// seq-handover rules cannot diverge between the two.
    fn rebuild_queue(&mut self, kind: QueueKind, events: Vec<Event>, next_seq: u64) {
        self.queue = match kind {
            QueueKind::Heap => QueueSlot::Heap(EventQueue::new()),
            QueueKind::Wheel => {
                let mut q = WheelQueue::new();
                // Anchor the horizon at the earliest pending tick (the
                // documented migration recipe) or the current time.
                q.set_cursor(
                    events
                        .first()
                        .map(|e| e.time.ticks())
                        .unwrap_or(self.time.ticks()),
                );
                QueueSlot::Wheel(q)
            }
        };
        for ev in events {
            match &mut self.queue {
                QueueSlot::Heap(q) => q.push_event(ev),
                QueueSlot::Wheel(q) => q.push_event(ev),
            }
        }
        match &mut self.queue {
            QueueSlot::Heap(q) => q.set_next_seq(next_seq),
            QueueSlot::Wheel(q) => q.set_next_seq(next_seq),
        }
    }

    /// Swaps the live queue implementation for `kind`, re-inserting every
    /// pending event with its original sequence number.
    fn migrate_queue(&mut self, kind: QueueKind) {
        if self.queue.kind() == kind {
            return;
        }
        let (events, next_seq) = self.drain_queue();
        self.rebuild_queue(kind, events, next_seq);
    }

    /// Declares a signal.
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside `1..=64`.
    pub fn wire(&mut self, name: impl Into<String>, width: u8) -> Wire {
        self.signals.declare(name, width)
    }

    /// Registers a component and schedules its [`Wake::Start`] at time zero.
    pub fn add_component(&mut self, component: Box<dyn Component>) -> ComponentId {
        let id = ComponentId::from_raw(self.comps.len());
        self.comp_names.push(component.name().to_owned());
        self.comps.push(Some(component));
        self.woken.push(false);
        self.queue.push(self.time, 0, EventKind::Start(id));
        id
    }

    /// Subscribes a component to changes of `wire` matching `edge`.
    pub fn subscribe(&mut self, component: ComponentId, wire: Wire, edge: Edge) {
        self.signals.subscribe(wire, component, edge);
    }

    /// Creates a kernel-managed clock signal with the given full period in
    /// ticks. The clock starts low; its first rising edge fires at
    /// `t = period`, then edges alternate every `period / 2`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is not an even number of at least 2 ticks.
    pub fn add_clock(&mut self, name: impl Into<String>, period: u64) -> Wire {
        assert!(
            period >= 2 && period.is_multiple_of(2),
            "clock period must be even and >= 2, got {period}"
        );
        let wire = self.signals.declare(name, 1);
        let idx = self.clocks.len();
        self.clocks.push(ClockDef {
            wire,
            half_period: period / 2,
        });
        let first = SimTime::from_ticks(period);
        if self.calendar_on {
            let seq = self.queue.alloc_seq();
            self.calendar.push(Some((first, seq)));
        } else {
            self.calendar.push(None);
            self.queue.push(first, 0, EventKind::ClockToggle(idx));
        }
        wire
    }

    /// Marks a signal for tracing; its committed changes are recorded and
    /// can be rendered to VCD with [`write_vcd`](Self::write_vcd).
    pub fn trace(&mut self, wire: Wire) {
        self.signals.set_traced(wire.id(), true);
        self.tracer.add_signal(wire.id());
    }

    /// Traces every signal whose hierarchical name satisfies `pred`.
    /// Returns the number of signals now being traced.
    ///
    /// Convenient for post-build instrumentation:
    /// `sim.trace_matching(|n| n.starts_with("cpu0.bus"))`.
    pub fn trace_matching(&mut self, pred: impl Fn(&str) -> bool) -> usize {
        let ids: Vec<_> = self
            .signals
            .iter_meta()
            .filter(|(_, name, _)| pred(name))
            .map(|(id, _, _)| id)
            .collect();
        for id in &ids {
            self.signals.set_traced(*id, true);
            self.tracer.add_signal(*id);
        }
        ids.len()
    }

    /// Current simulated time.
    pub fn time(&self) -> SimTime {
        self.time
    }

    /// Cumulative kernel statistics across all runs.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// The signal board (for name/width introspection and test harnesses).
    pub fn signals(&self) -> &SignalBoard {
        &self.signals
    }

    /// The recorded trace.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Writes all traced signals as a VCD file covering the run so far.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from writing the file.
    pub fn write_vcd(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        self.tracer.write_vcd(path, &self.signals, self.time)
    }

    /// Immutable access to a component by id, downcast to its concrete type.
    ///
    /// Returns `None` if the id is stale or `T` is not the component's type.
    pub fn component<T: 'static>(&self, id: ComponentId) -> Option<&T> {
        self.comps
            .get(id.index())?
            .as_ref()?
            .as_any()
            .downcast_ref::<T>()
    }

    /// Type-erased access to a component by id (for callers holding a
    /// probe function instead of a concrete type, e.g. bus-master stats
    /// collection).
    pub fn component_any(&self, id: ComponentId) -> Option<&dyn std::any::Any> {
        Some(self.comps.get(id.index())?.as_ref()?.as_any())
    }

    /// Mutable access to a component by id, downcast to its concrete type.
    pub fn component_mut<T: 'static>(&mut self, id: ComponentId) -> Option<&mut T> {
        self.comps
            .get_mut(id.index())?
            .as_mut()?
            .as_any_mut()
            .downcast_mut::<T>()
    }

    /// The name a component was registered with.
    pub fn component_name(&self, id: ComponentId) -> &str {
        &self.comp_names[id.index()]
    }

    /// Number of registered components.
    pub fn component_count(&self) -> usize {
        self.comps.len()
    }

    /// Registered components in id order: each component's id and name.
    /// The static-analysis layer uses this (together with
    /// [`signals`](Self::signals)) to extract a topology graph from a
    /// hand-wired simulator.
    pub fn components(&self) -> impl Iterator<Item = (ComponentId, &str)> {
        self.comp_names
            .iter()
            .enumerate()
            .map(|(i, name)| (ComponentId::from_raw(i), name.as_str()))
    }

    /// Number of kernel-managed clocks.
    pub fn clock_count(&self) -> usize {
        self.clocks.len()
    }

    /// The kernel-managed clocks in creation order: each clock's wire
    /// and its full toggle period in ticks (the value passed to
    /// [`add_clock`](Self::add_clock)).
    pub fn clocks(&self) -> impl Iterator<Item = (Wire, u64)> + '_ {
        self.clocks.iter().map(|c| (c.wire, c.half_period * 2))
    }

    /// Serializes the kernel's runtime state between runs: simulated
    /// time, cumulative [`KernelStats`] and [`FastPathStats`], the
    /// signal board (values, pending writes, counters), the clock
    /// calendar placement and slots (fire time + claimed virtual seq),
    /// every pending event with its full `(time, delta, seq)` key, and
    /// the global sequence counter. Restoring this exact tuple is what
    /// makes a resumed run replay bit-identically: the scheduling order
    /// is a pure function of the event keys and the counter.
    ///
    /// Takes `&mut self` because the queue is drained through the
    /// proven ordered-migration recipe and rebuilt in place — the
    /// simulator is unchanged when this returns. Must be called between
    /// runs (never from inside a `wake`); carried-wake and quiet-toggle
    /// scratch state is provably empty there and is not serialized.
    /// The tracer is observability, not state, and is not serialized.
    pub fn save_state(&mut self, w: &mut crate::snapshot::StateWriter) {
        debug_assert!(
            self.pending_wakes.is_empty() && self.fast_toggles.is_empty(),
            "save_state must run between runs"
        );
        w.put_u64(self.time.ticks());
        w.put_u64(self.stats.events);
        w.put_u64(self.stats.wakes);
        w.put_u64(self.stats.deltas);
        w.put_u64(self.stats.time_steps);
        w.put_u64(self.fast.clock_toggles);
        w.put_u64(self.fast.quiet_toggles);
        w.put_u64(self.fast.calendar_toggles);
        w.put_u32(self.comps.len() as u32);
        self.signals.save_state(w);
        // Calendar placement + slots. Slots are `Some` only while the
        // calendar is enabled; the queued reference path keeps its
        // toggles among the ordinary events below.
        w.put_bool(self.calendar_on);
        w.put_u32(self.calendar.len() as u32);
        for slot in &self.calendar {
            match slot {
                Some((time, seq)) => {
                    w.put_bool(true);
                    w.put_u64(time.ticks());
                    w.put_u64(*seq);
                }
                None => w.put_bool(false),
            }
        }
        // Pending events, earliest first, with original keys.
        let kind = self.queue.kind();
        let (events, next_seq) = self.drain_queue();
        w.put_u64(events.len() as u64);
        for ev in &events {
            w.put_u64(ev.time.ticks());
            w.put_u32(ev.delta);
            w.put_u64(ev.seq);
            match ev.kind {
                EventKind::Start(c) => {
                    w.put_u8(0);
                    w.put_u32(c.index() as u32);
                }
                EventKind::Wake(c, tag) => {
                    w.put_u8(1);
                    w.put_u32(c.index() as u32);
                    w.put_u64(tag);
                }
                EventKind::SignalWake(c, sig) => {
                    w.put_u8(2);
                    w.put_u32(c.index() as u32);
                    w.put_u32(sig.index() as u32);
                }
                EventKind::ClockToggle(k) => {
                    w.put_u8(3);
                    w.put_u32(k as u32);
                }
            }
        }
        w.put_u64(next_seq);
        self.rebuild_queue(kind, events, next_seq);
    }

    /// Restores kernel state written by [`Simulator::save_state`] onto a
    /// simulator with the same topology (components, signals, clocks).
    ///
    /// The live queue implementation and the calendar placement are
    /// *target* choices, not snapshot contents: events are rebuilt into
    /// whatever queue kind this simulator uses, and if the snapshot's
    /// calendar placement differs from this simulator's, the pending
    /// toggles are migrated through the same `(time, seq)`-preserving
    /// recipe as [`set_clock_calendar`](Self::set_clock_calendar) — so a
    /// snapshot taken on a heap/calendar system restores bit-identically
    /// onto a wheel/queued one and vice versa.
    ///
    /// On error the simulator may be partially restored and must be
    /// discarded.
    pub fn load_state(
        &mut self,
        r: &mut crate::snapshot::StateReader<'_>,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        self.time = SimTime::from_ticks(r.get_u64("kernel time")?);
        self.stats.events = r.get_u64("kernel stats.events")?;
        self.stats.wakes = r.get_u64("kernel stats.wakes")?;
        self.stats.deltas = r.get_u64("kernel stats.deltas")?;
        self.stats.time_steps = r.get_u64("kernel stats.time_steps")?;
        self.fast.clock_toggles = r.get_u64("kernel fast.clock_toggles")?;
        self.fast.quiet_toggles = r.get_u64("kernel fast.quiet_toggles")?;
        self.fast.calendar_toggles = r.get_u64("kernel fast.calendar_toggles")?;
        let comps = r.get_u32("component count")? as usize;
        if comps != self.comps.len() {
            return Err(SnapshotError::Mismatch {
                context: format!(
                    "snapshot has {comps} components, target has {}",
                    self.comps.len()
                ),
            });
        }
        self.signals.load_state(r)?;
        let saved_calendar_on = r.get_bool("calendar placement")?;
        let clocks = r.get_u32("clock count")? as usize;
        if clocks != self.calendar.len() {
            return Err(SnapshotError::Mismatch {
                context: format!(
                    "snapshot has {clocks} clocks, target has {}",
                    self.calendar.len()
                ),
            });
        }
        for slot in self.calendar.iter_mut() {
            *slot = if r.get_bool("calendar slot")? {
                let time = SimTime::from_ticks(r.get_u64("calendar slot time")?);
                let seq = r.get_u64("calendar slot seq")?;
                Some((time, seq))
            } else {
                None
            };
        }
        let count = r.get_u64("event count")?;
        let mut events = Vec::new();
        for _ in 0..count {
            let time = SimTime::from_ticks(r.get_u64("event time")?);
            let delta = r.get_u32("event delta")?;
            let seq = r.get_u64("event seq")?;
            let tag = r.get_u8("event kind")?;
            let comp_bound = |raw: u32| -> Result<ComponentId, SnapshotError> {
                if (raw as usize) < comps {
                    Ok(ComponentId::from_raw(raw as usize))
                } else {
                    Err(SnapshotError::Corrupt {
                        context: format!("event names component {raw} of {comps}"),
                    })
                }
            };
            let kind = match tag {
                0 => EventKind::Start(comp_bound(r.get_u32("event component")?)?),
                1 => EventKind::Wake(
                    comp_bound(r.get_u32("event component")?)?,
                    r.get_u64("event tag")?,
                ),
                2 => {
                    let c = comp_bound(r.get_u32("event component")?)?;
                    let raw = r.get_u32("event signal")?;
                    if raw as usize >= self.signals.len() {
                        return Err(SnapshotError::Corrupt {
                            context: format!(
                                "event names signal {raw} of {}",
                                self.signals.len()
                            ),
                        });
                    }
                    EventKind::SignalWake(c, crate::signal::SignalId(raw))
                }
                3 => {
                    let k = r.get_u32("event clock")?;
                    if k as usize >= clocks {
                        return Err(SnapshotError::Corrupt {
                            context: format!("event names clock {k} of {clocks}"),
                        });
                    }
                    EventKind::ClockToggle(k as usize)
                }
                t => {
                    return Err(SnapshotError::Corrupt {
                        context: format!("unknown event kind tag {t}"),
                    })
                }
            };
            events.push(Event {
                time,
                delta,
                seq,
                kind,
            });
        }
        let next_seq = r.get_u64("next seq")?;
        let kind = self.queue.kind();
        self.rebuild_queue(kind, events, next_seq);
        // Calendar placement is this simulator's runtime choice; if the
        // snapshot was taken under the other placement, migrate the
        // toggles through the standard `(time, seq)`-preserving path.
        let want = self.calendar_on;
        self.calendar_on = saved_calendar_on;
        if want != saved_calendar_on {
            self.set_clock_calendar(want);
        }
        // A restored simulator resumes cleanly: no recorded stop, empty
        // per-delta scratch (provably empty at save time, see
        // `save_state`).
        self.stop = None;
        self.changes.clear();
        self.woken_list.clear();
        self.woken.iter_mut().for_each(|f| *f = false);
        self.pending_wakes.clear();
        self.fast_toggles.clear();
        Ok(())
    }

    /// Serializes one component's state (name-tagged, then the
    /// component's own [`Component::save_state`] payload).
    pub fn save_component_state(&self, index: usize, w: &mut crate::snapshot::StateWriter) {
        let comp = self.comps[index]
            .as_ref()
            .expect("component checked out during save");
        w.put_str(&self.comp_names[index]);
        comp.save_state(w);
    }

    /// Restores one component's state written by
    /// [`save_component_state`](Self::save_component_state), validating
    /// the recorded name against the registered one.
    pub fn load_component_state(
        &mut self,
        index: usize,
        r: &mut crate::snapshot::StateReader<'_>,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        if index >= self.comps.len() {
            return Err(SnapshotError::Mismatch {
                context: format!(
                    "snapshot names component {index} of {}",
                    self.comps.len()
                ),
            });
        }
        let name = r.get_str("component name")?;
        if name != self.comp_names[index] {
            return Err(SnapshotError::Mismatch {
                context: format!(
                    "component {index} is `{}` in the target but `{name}` in the snapshot",
                    self.comp_names[index]
                ),
            });
        }
        let comp = self.comps[index]
            .as_mut()
            .expect("component checked out during restore");
        comp.load_state(r)?;
        r.finish("component payload")
    }

    /// Forces a signal's current value before the first run (test stimuli).
    pub fn poke(&mut self, wire: Wire, value: u64) {
        self.signals.poke(wire, value);
    }

    /// Reads a signal's committed value.
    pub fn peek(&self, wire: Wire) -> u64 {
        self.signals.read(wire)
    }

    /// Runs for `ticks` ticks past the current time.
    pub fn run_for(&mut self, ticks: u64) -> RunSummary {
        self.run(RunLimit::for_ticks(ticks))
    }

    /// Runs until a component stops the simulation, the event queue drains,
    /// or `max_ticks` elapse — whichever comes first.
    pub fn run_until_stopped(&mut self, max_ticks: u64) -> RunSummary {
        self.run(RunLimit::for_ticks(max_ticks))
    }

    /// Runs the event loop under the given limit.
    ///
    /// A previously recorded stop reason is cleared so the simulation can be
    /// resumed after inspection.
    ///
    /// The first call pins the queue implementation (see
    /// [`set_queue_kind`](Self::set_queue_kind)); the loop itself is
    /// monomorphized per implementation and selected here, once per call
    /// — never inside the per-event path.
    pub fn run(&mut self, limit: RunLimit) -> RunSummary {
        if self.queue_choice.is_none() {
            let kind = self.auto_queue_kind();
            self.queue_choice = Some(kind);
            self.migrate_queue(kind);
        }
        // The slot is taken out for the duration of the run so the loop
        // borrows the queue and the simulator independently.
        match std::mem::replace(&mut self.queue, QueueSlot::Heap(EventQueue::new())) {
            QueueSlot::Heap(mut q) => {
                let summary = self.run_core(limit, &mut q);
                self.queue = QueueSlot::Heap(q);
                summary
            }
            QueueSlot::Wheel(mut q) => {
                let summary = self.run_core(limit, &mut q);
                self.queue = QueueSlot::Wheel(q);
                summary
            }
        }
    }

    /// The event loop. Generic over the queue implementation — exactly
    /// two monomorphizations exist, and `#[inline(never)]` keeps each one
    /// a single outlined function so that carrying both in one binary
    /// does not perturb the code placement of either (the historical
    /// per-build feature selection existed because a naive second
    /// instantiation cost ~25 % wall clock on the small-system path; the
    /// benches `kernel_micro` / `exp_headline` pin the shaped version at
    /// parity with a single-queue build).
    #[inline(never)]
    fn run_core<Q: Queue>(&mut self, limit: RunLimit, queue: &mut Q) -> RunSummary {
        // Reporting-only wall-clock sample: never feeds back into event
        // ordering.
        #[allow(clippy::disallowed_methods)]
        let wall_start = Instant::now();
        let stats_start = self.stats;
        self.stop = None;
        let mut events_left = limit.max_events;
        let deadline = limit.resolve(self.time);

        'outer: while self.stop.is_none() {
            // The next work item is the earlier of the queue head and the
            // calendar head, compared by the full (time, delta, seq) key
            // (calendar toggles always fire at delta 0) — removing
            // periodic toggles from the queue must not reorder anything.
            let c = self.calendar_earliest();
            let (t, first_delta) = {
                let q = queue.peek_full_key();
                match (q, c) {
                    (None, None) => break,
                    (Some((qt, qd, qs)), Some((ct, cs, _))) => {
                        if (ct, 0u32, cs) < (qt, qd, qs) {
                            (ct, 0)
                        } else {
                            (qt, qd)
                        }
                    }
                    (Some((qt, qd, _)), None) => (qt, qd),
                    (None, Some((ct, _, _))) => (ct, 0),
                }
            };
            if t > deadline {
                self.time = deadline;
                break;
            }
            self.time = t;
            self.stats.time_steps += 1;

            let mut delta = first_delta;
            loop {
                // Evaluate: dispatch every event due at (t, delta) —
                // calendar toggles and queued events merged in `seq`
                // order; their sequence numbers always precede the
                // previous update phase's signal wakes…
                //
                // Calendar toggles only ever fire at delta 0, and a
                // dispatched toggle re-arms strictly later than `t`, so
                // the due lookup drains within the first delta. The
                // min-scan result is carried from the outer head and
                // cached across evaluate rounds, recomputed only after
                // `toggle_clock` re-arms a slot — one scan per
                // dispatched toggle, not one per round.
                let mut cal = match c {
                    Some((ct, cs, k)) if delta == 0 && ct == t => Some((k, cs)),
                    _ => None,
                };
                'evaluate: loop {
                    let cal_seq = cal.map_or(u64::MAX, |(_, s)| s);
                    let queued_due = matches!(
                        queue.peek_full_key(),
                        Some((tt, dd, s)) if tt == t && dd == delta && s < cal_seq
                    );
                    if !queued_due {
                        let Some((k, _)) = cal else { break 'evaluate };
                        // The calendar head is next. Nothing was popped,
                        // so a budget stop simply leaves the slot armed —
                        // the resumed run dispatches it with the same key
                        // the queued path would have replayed.
                        if events_left == 0 {
                            self.stop =
                                Some(StopReason::Error("event budget exhausted".into()));
                            self.park_fast_toggles();
                            self.requeue_pending_wakes(queue, t, delta);
                            break 'outer;
                        }
                        events_left -= 1;
                        self.stats.events += 1;
                        self.fast.calendar_toggles += 1;
                        self.toggle_clock(queue, k, t);
                        cal = self.calendar_due(t);
                        continue 'evaluate;
                    }

                    // A queued event is next.
                    let ev = queue.pop().expect("peeked event");
                    if events_left == 0 {
                        // Out of budget with work still due: put the
                        // just-popped event back (original sequence
                        // number, so a resumed run replays the exact
                        // dispatch order an unbounded run would have).
                        queue.push_event(ev);
                        self.stop = Some(StopReason::Error("event budget exhausted".into()));
                        self.park_fast_toggles();
                        self.requeue_pending_wakes(queue, t, delta);
                        break 'outer;
                    }
                    events_left -= 1;
                    self.stats.events += 1;
                    // One event, one frame. A hoisted shared frame for
                    // runs of same-key Start/timer events (the batched-
                    // edge treatment applied to the queued path) was
                    // implemented and measured: the timer-storm
                    // microbench (`kernel_1k_ticks_timer_storm_*`)
                    // showed no win — queue churn, not frame
                    // construction, dominates queued dispatch — while
                    // the extra code in this loop's body cost the
                    // clocked benches 5-12 % wall clock from codegen
                    // alone (the same layout sensitivity the queue
                    // monomorphization history documents above). The
                    // per-event form is the measured optimum.
                    match ev.kind {
                        EventKind::Start(cid) => self.dispatch(queue, cid, Wake::Start, t, delta),
                        EventKind::Wake(cid, tag) => {
                            self.dispatch(queue, cid, Wake::Timer(tag), t, delta)
                        }
                        EventKind::SignalWake(cid, sid) => {
                            self.dispatch(queue, cid, Wake::Signal(sid), t, delta)
                        }
                        EventKind::ClockToggle(k) => {
                            self.toggle_clock(queue, k, t);
                            if delta == 0 {
                                cal = self.calendar_due(t);
                            }
                        }
                    }
                }
                // …then the carried signal wakes, in subscription-scan
                // order — the exact order the queued `SignalWake` events
                // used to pop in, without the queue round-trip.
                if !self.pending_wakes.is_empty() {
                    let mut wakes = std::mem::take(&mut self.pending_wakes);
                    // Batched same-edge dispatch: one `Ctx` frame serves
                    // the whole batch, with only the per-wake cause /
                    // self-id fields updated inside the loop — the frame
                    // rebuild (borrows, time, delta, stop) is hoisted out.
                    // Dispatch order is the slice order, identical to the
                    // per-wake reference path below (pinned by
                    // `tests/clock_specialization.rs`).
                    let mut budget_hit = None;
                    if self.specialize {
                        let mut ctx = Ctx {
                            signals: &mut self.signals,
                            queue,
                            time: t,
                            delta,
                            cause: Wake::Start, // overwritten before first use
                            self_id: ComponentId::from_raw(0),
                            stop: &mut self.stop,
                        };
                        for (i, &(cid, sid)) in wakes.iter().enumerate() {
                            if events_left == 0 {
                                budget_hit = Some(i);
                                break;
                            }
                            events_left -= 1;
                            self.stats.events += 1;
                            let mut comp = self.comps[cid.index()]
                                .take()
                                .expect("component re-entered during its own wake");
                            ctx.cause = Wake::Signal(sid);
                            ctx.self_id = cid;
                            comp.wake(&mut ctx);
                            self.comps[cid.index()] = Some(comp);
                            self.stats.wakes += 1;
                        }
                    } else {
                        // Reference path: per-wake dispatch with a fresh
                        // `Ctx` each time.
                        for (i, &(cid, sid)) in wakes.iter().enumerate() {
                            if events_left == 0 {
                                budget_hit = Some(i);
                                break;
                            }
                            events_left -= 1;
                            self.stats.events += 1;
                            self.dispatch(queue, cid, Wake::Signal(sid), t, delta);
                        }
                    }
                    if let Some(i) = budget_hit {
                        // Re-queue the undispatched tail at its due
                        // (t, delta) so a resumed run replays exactly.
                        for &(cid, sid) in &wakes[i..] {
                            queue.push(t, delta, EventKind::SignalWake(cid, sid));
                        }
                        self.stop = Some(StopReason::Error("event budget exhausted".into()));
                        self.park_fast_toggles();
                        break 'outer;
                    }
                    wakes.clear();
                    self.pending_wakes = wakes; // keep the capacity
                }

                // Update: first finish any quiet clock toggles (their
                // transition has no observer, so flipping in place here —
                // where the ordinary write would have committed — is
                // indistinguishable from the reference path), then commit
                // writes and wake subscribers in the next delta.
                if !self.fast_toggles.is_empty() {
                    for w in self.fast_toggles.drain(..) {
                        self.signals.apply_quiet_toggle(w);
                    }
                }
                self.changes.clear();
                self.signals.commit(&mut self.changes);
                self.stats.deltas += 1;

                for &ch in &self.changes {
                    if self.signals.is_traced(ch.signal) {
                        self.tracer.record(t, ch.signal, ch.new);
                    }
                    // Clone-free iteration: subscriber lists are only
                    // mutated during build, never during a run, so the
                    // slice borrow is safe alongside the wake bookkeeping
                    // (disjoint fields).
                    for &(cid, edge) in self.signals.subscribers(ch.signal) {
                        if edge.matches(ch.old, ch.new) && !self.woken[cid.index()] {
                            self.woken[cid.index()] = true;
                            self.woken_list.push(cid);
                            self.pending_wakes.push((cid, ch.signal));
                        }
                    }
                }
                for cid in self.woken_list.drain(..) {
                    self.woken[cid.index()] = false;
                }

                if self.stop.is_some() {
                    // A stopping run may leave this delta's subscriber
                    // wakes undispatched: park them in the queue at their
                    // due (t, delta + 1) so resuming the simulation
                    // replays them exactly — identical to the behaviour
                    // when every wake was a queued event.
                    self.requeue_pending_wakes(queue, t, delta + 1);
                    break;
                }
                // Continue while this time step has more work: carried
                // wakes always run in the next delta; queued events at a
                // later delta of `t` otherwise set the next delta. The
                // calendar never participates here — its toggles all
                // fire at delta 0 and re-arm strictly later than `t`.
                debug_assert!(
                    self.calendar_due(t).is_none(),
                    "calendar toggles must drain within delta 0"
                );
                let next = if self.pending_wakes.is_empty() {
                    match queue.peek_key() {
                        Some((tt, dd)) if tt == t => Some(dd),
                        _ => None,
                    }
                } else {
                    Some(delta + 1)
                };
                match next {
                    Some(dd) => {
                        if dd - first_delta > self.delta_limit {
                            self.stop = Some(StopReason::Error(format!(
                                "delta-cycle limit ({}) exceeded at {t}: combinational loop?",
                                self.delta_limit
                            )));
                            self.requeue_pending_wakes(queue, t, dd);
                            break;
                        }
                        delta = dd;
                    }
                    None => break,
                }
            }
        }

        debug_assert!(
            self.pending_wakes.is_empty(),
            "carried wakes must never outlive a run call"
        );
        debug_assert!(
            self.fast_toggles.is_empty(),
            "deferred quiet toggles must never outlive a run call"
        );
        RunSummary {
            end_time: self.time,
            stats: self.stats.since(&stats_start),
            wall: wall_start.elapsed(),
            stop: self.stop.clone(),
        }
    }

    /// The earliest armed calendar slot as `(time, seq, clock index)` —
    /// a linear min-scan: clock counts are small (the headline systems
    /// run 1–8), so a scan beats any ordered structure's bookkeeping.
    #[inline]
    fn calendar_earliest(&self) -> Option<(SimTime, u64, usize)> {
        let mut best: Option<(SimTime, u64, usize)> = None;
        for (k, slot) in self.calendar.iter().enumerate() {
            if let Some((time, seq)) = *slot {
                if best.is_none_or(|(bt, bs, _)| (time, seq) < (bt, bs)) {
                    best = Some((time, seq, k));
                }
            }
        }
        best
    }

    /// The earliest calendar toggle due exactly at `t`, as
    /// `(clock index, seq)`. Slots earlier than `t` cannot exist: the
    /// run loop never advances time past an armed slot.
    #[inline]
    fn calendar_due(&self, t: SimTime) -> Option<(usize, u64)> {
        match self.calendar_earliest() {
            Some((time, seq, k)) if time == t => Some((k, seq)),
            _ => None,
        }
    }

    /// Dispatches clock `k`'s toggle at time `t`: flip (quiet when the
    /// edge provably has no observer) and re-arm the next half-period —
    /// in the calendar when it is on, as a queued `ClockToggle`
    /// otherwise. The sequence number is claimed at exactly this point
    /// on both paths, so the global scheduling order is identical.
    #[inline]
    fn toggle_clock<Q: Queue>(&mut self, queue: &mut Q, k: usize, t: SimTime) {
        self.fast.clock_toggles += 1;
        let clock = &self.clocks[k];
        let wire = clock.wire;
        let cur = self.signals.read(wire);
        let rising = cur == 0;
        // Edge-filtered fast path: a toggle whose resulting edge has no
        // matching subscriber (and no tracer, and no competing write) is
        // unobservable — defer a quiet in-place flip to this delta's
        // update phase and skip the commit/scan machinery entirely. For
        // a system clocking everything on the rising edge, every second
        // half-period becomes a toggle-only event.
        if self.specialize && self.signals.try_begin_quiet_toggle(wire, rising) {
            self.fast.quiet_toggles += 1;
            self.fast_toggles.push(wire);
        } else {
            self.signals.write(wire, cur ^ 1);
        }
        let next_t = t + clock.half_period;
        if self.calendar_on {
            self.calendar[k] = Some((next_t, queue.alloc_seq()));
        } else {
            queue.push(next_t, 0, EventKind::ClockToggle(k));
        }
    }

    /// Moves any carried-but-undispatched subscriber wakes back into the
    /// event queue at `(t, delta)`, so an interrupted run can resume with
    /// exactly the dispatch sequence the fully-queued implementation had.
    fn requeue_pending_wakes<Q: Queue>(&mut self, queue: &mut Q, t: SimTime, delta: u32) {
        for (cid, sid) in self.pending_wakes.drain(..) {
            queue.push(t, delta, EventKind::SignalWake(cid, sid));
        }
    }

    /// Converts still-deferred quiet clock toggles back into ordinary
    /// pending writes (a run breaking off mid-delta never reaches the
    /// update phase that would have finished them); the resumed run's
    /// first commit then applies them exactly like the reference path.
    fn park_fast_toggles(&mut self) {
        for w in self.fast_toggles.drain(..) {
            self.signals.requeue_quiet_toggle(w);
        }
    }

    fn dispatch<Q: Queue>(
        &mut self,
        queue: &mut Q,
        cid: ComponentId,
        cause: Wake,
        time: SimTime,
        delta: u32,
    ) {
        let mut comp = self.comps[cid.index()]
            .take()
            .expect("component re-entered during its own wake");
        {
            let mut ctx = Ctx {
                signals: &mut self.signals,
                queue,
                time,
                delta,
                cause,
                self_id: cid,
                stop: &mut self.stop,
            };
            comp.wake(&mut ctx);
        }
        self.comps[cid.index()] = Some(comp);
        self.stats.wakes += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;

    /// Counts rising edges of a clock.
    struct EdgeCounter {
        clk: Wire,
        edges: u64,
    }
    impl Component for EdgeCounter {
        fn name(&self) -> &str {
            "edge_counter"
        }
        fn wake(&mut self, ctx: &mut Ctx<'_>) {
            if ctx.is_signal(self.clk) {
                self.edges += 1;
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn clock_generates_expected_edges() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", 10);
        let id = sim.add_component(Box::new(EdgeCounter { clk, edges: 0 }));
        sim.subscribe(id, clk, Edge::Rising);
        sim.run_for(100);
        // Rising edges at t = 10, 20, ..., 100 -> 10 edges.
        let c: &EdgeCounter = sim.component(id).unwrap();
        assert_eq!(c.edges, 10);
    }

    #[test]
    fn falling_edges_offset_by_half_period() {
        struct FallCounter {
            clk: Wire,
            times: Vec<u64>,
        }
        impl Component for FallCounter {
            fn name(&self) -> &str {
                "fall"
            }
            fn wake(&mut self, ctx: &mut Ctx<'_>) {
                if ctx.is_signal(self.clk) {
                    self.times.push(ctx.time().ticks());
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", 10);
        let id = sim.add_component(Box::new(FallCounter {
            clk,
            times: vec![],
        }));
        sim.subscribe(id, clk, Edge::Falling);
        sim.run_for(40);
        let c: &FallCounter = sim.component(id).unwrap();
        assert_eq!(c.times, vec![15, 25, 35]);
    }

    /// Two-stage pipeline through signals: checks flip-flop semantics, i.e.
    /// a clocked reader sees the value from *before* the edge.
    struct Stage {
        clk: Wire,
        input: Wire,
        output: Wire,
        seen: Vec<u64>,
    }
    impl Component for Stage {
        fn name(&self) -> &str {
            "stage"
        }
        fn wake(&mut self, ctx: &mut Ctx<'_>) {
            if ctx.is_signal(self.clk) {
                let v = ctx.read(self.input);
                self.seen.push(v);
                ctx.write(self.output, v + 1);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn registered_semantics_between_clocked_components() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", 10);
        let a = sim.wire("a", 32);
        let b = sim.wire("b", 32);
        // stage1: a -> b (+1), stage2: b -> a (+1). Values advance one hop
        // per cycle; both read pre-edge values.
        let s1 = sim.add_component(Box::new(Stage {
            clk,
            input: a,
            output: b,
            seen: vec![],
        }));
        let s2 = sim.add_component(Box::new(Stage {
            clk,
            input: b,
            output: a,
            seen: vec![],
        }));
        sim.subscribe(s1, clk, Edge::Rising);
        sim.subscribe(s2, clk, Edge::Rising);
        sim.run_for(30); // edges at 10, 20, 30
        let st1: &Stage = sim.component(s1).unwrap();
        let st2: &Stage = sim.component(s2).unwrap();
        // cycle1: both read 0. cycle2: s1 reads a=1 (s2 wrote 0+1),
        // s2 reads b=1. cycle3: both read 2.
        assert_eq!(st1.seen, vec![0, 1, 2]);
        assert_eq!(st2.seen, vec![0, 1, 2]);
    }

    /// A combinational inverter: output follows !input within the same time
    /// step via an extra delta cycle.
    struct Inverter {
        input: Wire,
        output: Wire,
    }
    impl Component for Inverter {
        fn name(&self) -> &str {
            "inv"
        }
        fn wake(&mut self, ctx: &mut Ctx<'_>) {
            let v = ctx.read_bit(self.input);
            ctx.write_bit(self.output, !v);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn combinational_logic_settles_within_time_step() {
        let mut sim = Simulator::new();
        let a = sim.wire("a", 1);
        let b = sim.wire("b", 1);
        let inv = sim.add_component(Box::new(Inverter {
            input: a,
            output: b,
        }));
        sim.subscribe(inv, a, Edge::Any);

        struct Driver {
            a: Wire,
        }
        impl Component for Driver {
            fn name(&self) -> &str {
                "drv"
            }
            fn wake(&mut self, ctx: &mut Ctx<'_>) {
                match ctx.cause() {
                    Wake::Start => {
                        ctx.schedule_in(5, 1);
                    }
                    Wake::Timer(_) => {
                        ctx.write_bit(self.a, true);
                    }
                    _ => {}
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        sim.add_component(Box::new(Driver { a }));
        // After the Start wake the inverter has settled b = !0 = 1.
        sim.run_for(2);
        assert_eq!(sim.peek(a), 0);
        assert_eq!(sim.peek(b), 1, "inverter settled from Start wake");
        // After the driver raises a at t=5 the inverter follows within the
        // same time step (extra delta cycles, no tick advance).
        sim.run_for(18);
        assert_eq!(sim.peek(a), 1);
        assert_eq!(sim.peek(b), 0, "inverter output follows input");
    }

    /// Ring oscillator: inverter feeding itself must hit the delta limit
    /// and stop with an error rather than hanging.
    #[test]
    fn combinational_loop_detected() {
        let mut sim = Simulator::new();
        let a = sim.wire("a", 1);
        let inv = sim.add_component(Box::new(Inverter {
            input: a,
            output: a,
        }));
        sim.subscribe(inv, a, Edge::Any);

        struct Kick {
            a: Wire,
        }
        impl Component for Kick {
            fn name(&self) -> &str {
                "kick"
            }
            fn wake(&mut self, ctx: &mut Ctx<'_>) {
                if ctx.cause() == Wake::Start {
                    ctx.write_bit(self.a, true);
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        sim.add_component(Box::new(Kick { a }));
        let summary = sim.run_for(10);
        assert!(summary.is_error());
        assert!(summary
            .stop
            .unwrap()
            .message()
            .contains("delta-cycle limit"));
    }

    #[test]
    fn stop_finishes_run_early() {
        struct Stopper;
        impl Component for Stopper {
            fn name(&self) -> &str {
                "stopper"
            }
            fn wake(&mut self, ctx: &mut Ctx<'_>) {
                match ctx.cause() {
                    Wake::Start => ctx.schedule_in(7, 0),
                    Wake::Timer(_) => ctx.stop("workload complete"),
                    _ => {}
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut sim = Simulator::new();
        sim.add_clock("clk", 2);
        sim.add_component(Box::new(Stopper));
        let summary = sim.run_for(1000);
        assert_eq!(summary.end_time.ticks(), 7);
        assert!(!summary.is_error());
        assert_eq!(summary.stop.unwrap().message(), "workload complete");
    }

    #[test]
    fn resume_after_stop_replays_carried_wakes() {
        // A component writes a wire and stops the run in the same delta:
        // the subscriber wake produced by that delta's update phase is
        // still pending when the run returns. Resuming must dispatch it
        // at the original simulated time — the exact behaviour of the
        // fully-queued SignalWake implementation.
        struct WriteAndStop {
            w: Wire,
        }
        impl Component for WriteAndStop {
            fn name(&self) -> &str {
                "write_and_stop"
            }
            fn wake(&mut self, ctx: &mut Ctx<'_>) {
                match ctx.cause() {
                    Wake::Start => ctx.schedule_in(5, 0),
                    Wake::Timer(_) => {
                        ctx.write_bit(self.w, true);
                        ctx.stop("paused mid-delta");
                    }
                    _ => {}
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        struct TimeStamper {
            w: Wire,
            seen: Vec<u64>,
        }
        impl Component for TimeStamper {
            fn name(&self) -> &str {
                "stamper"
            }
            fn wake(&mut self, ctx: &mut Ctx<'_>) {
                if ctx.is_signal(self.w) {
                    self.seen.push(ctx.time().ticks());
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut sim = Simulator::new();
        let w = sim.wire("w", 1);
        sim.add_component(Box::new(WriteAndStop { w }));
        let sid = sim.add_component(Box::new(TimeStamper { w, seen: vec![] }));
        sim.subscribe(sid, w, Edge::Rising);
        let summary = sim.run_for(100);
        assert_eq!(summary.stop.unwrap().message(), "paused mid-delta");
        assert!(
            sim.component::<TimeStamper>(sid).unwrap().seen.is_empty(),
            "the wake was parked, not dispatched"
        );
        sim.run_for(100);
        assert_eq!(
            sim.component::<TimeStamper>(sid).unwrap().seen,
            vec![5],
            "resumed wake fires at its original time"
        );
    }

    #[test]
    fn event_budget_stops_runaway() {
        let mut sim = Simulator::new();
        sim.add_clock("clk", 2);
        let summary = sim.run(RunLimit::unbounded().with_max_events(100));
        assert!(summary.is_error());
        assert!(summary.stop.unwrap().message().contains("event budget"));
    }

    #[test]
    fn timer_zero_fires_next_delta_same_time() {
        struct Chain {
            fired_at: Vec<(u64, u32)>,
        }
        impl Component for Chain {
            fn name(&self) -> &str {
                "chain"
            }
            fn wake(&mut self, ctx: &mut Ctx<'_>) {
                self.fired_at.push((ctx.time().ticks(), ctx.delta()));
                match ctx.cause() {
                    Wake::Start => ctx.schedule_in(0, 1),
                    Wake::Timer(1) => ctx.schedule_in(0, 2),
                    _ => {}
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut sim = Simulator::new();
        let id = sim.add_component(Box::new(Chain { fired_at: vec![] }));
        sim.run_for(5);
        let c: &Chain = sim.component(id).unwrap();
        assert_eq!(c.fired_at.len(), 3);
        assert!(c.fired_at.iter().all(|&(t, _)| t == 0));
        assert_eq!(c.fired_at[0].1, 0);
        assert!(c.fired_at[1].1 > c.fired_at[0].1);
        assert!(c.fired_at[2].1 > c.fired_at[1].1);
    }

    #[test]
    fn component_downcast_and_names() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", 4);
        let id = sim.add_component(Box::new(EdgeCounter { clk, edges: 0 }));
        assert_eq!(sim.component_name(id), "edge_counter");
        assert_eq!(sim.component_count(), 1);
        assert!(sim.component::<EdgeCounter>(id).is_some());
        assert!(sim.component::<Inverter>(id).is_none());
        sim.component_mut::<EdgeCounter>(id).unwrap().edges = 5;
        assert_eq!(sim.component::<EdgeCounter>(id).unwrap().edges, 5);
    }

    #[test]
    fn resume_after_deadline_continues_time() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", 10);
        let id = sim.add_component(Box::new(EdgeCounter { clk, edges: 0 }));
        sim.subscribe(id, clk, Edge::Rising);
        sim.run_for(50);
        assert_eq!(sim.component::<EdgeCounter>(id).unwrap().edges, 5);
        sim.run_for(50);
        assert_eq!(sim.component::<EdgeCounter>(id).unwrap().edges, 10);
        assert_eq!(sim.time().ticks(), 100);
    }

    #[test]
    fn for_ticks_is_relative_to_current_time() {
        // Regression: `RunLimit::for_ticks(n)` used to construct an
        // *absolute* deadline of `n`, so a second run with the same limit
        // made no progress. It must mean "n ticks past the current time",
        // resolved when the run starts.
        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", 10);
        let id = sim.add_component(Box::new(EdgeCounter { clk, edges: 0 }));
        sim.subscribe(id, clk, Edge::Rising);
        let limit = RunLimit::for_ticks(50);
        sim.run(limit);
        assert_eq!(sim.time().ticks(), 50);
        sim.run(limit); // the very same limit value advances again
        assert_eq!(sim.time().ticks(), 100);
        assert_eq!(sim.component::<EdgeCounter>(id).unwrap().edges, 10);
    }

    #[test]
    fn vcd_tracing_records_clock() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", 10);
        sim.trace(clk);
        sim.run_for(20);
        let recs = sim.tracer().records();
        assert_eq!(recs.len(), 3, "edges at 10, 15, 20");
        let vcd = sim.tracer().to_vcd(sim.signals(), sim.time());
        assert!(vcd.contains("$var wire 1 ! clk $end"));
        assert!(vcd.contains("#10\n1!"));
        assert!(vcd.contains("#15\n0!"));
    }
}
