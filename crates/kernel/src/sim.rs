//! The simulator: owns components, signals, clocks and the event loop.

use std::time::{Duration, Instant};

use crate::component::{Component, ComponentId, Wake};
use crate::ctx::{Ctx, StopReason};
use crate::event::{EventKind, Queue};

/// The queue implementation the run loop is compiled against.
///
/// A *compile-time* choice (cargo feature `wheel-queue`), deliberately not
/// a runtime one: the run loop is extremely sensitive to its queue's code
/// shape — measurements showed that merely instantiating the loop for a
/// second queue type costs ~25% wall clock on the small-system path (code
/// placement/inlining interactions), and even one extra never-taken
/// branch with a call in its arm costs several percent. Selecting the
/// implementation per build keeps exactly one monomorphization and zero
/// per-event dispatch overhead; both implementations are key-exact, so
/// simulations are bit-identical either way (see the `event` module
/// docs and `tests/determinism.rs`).
#[cfg(not(feature = "wheel-queue"))]
pub type RunQueue = crate::event::EventQueue;
/// The queue implementation the run loop is compiled against (the time
/// wheel: build with `--features dmi-kernel/wheel-queue` for large
/// systems; see the `event` module docs).
#[cfg(feature = "wheel-queue")]
pub type RunQueue = crate::event::WheelQueue;
use crate::signal::{Change, Edge, SignalBoard, Wire};
use crate::stats::KernelStats;
use crate::time::SimTime;
use crate::trace::Tracer;

/// When a [`Simulator::run`] call must stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Deadline {
    /// Absolute simulated time (inclusive of events at earlier times,
    /// exclusive of events after it).
    Absolute(SimTime),
    /// Resolved against the current simulation time when the run starts.
    TicksFromNow(u64),
}

/// How long a [`Simulator::run`] call may execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunLimit {
    deadline: Deadline,
    /// Maximum number of events to dispatch in this call, as a safety net
    /// for runaway models. `u64::MAX` means unlimited.
    max_events: u64,
}

impl RunLimit {
    /// Run for `ticks` ticks past the simulation time current when
    /// [`Simulator::run`] is called (resolved at that point, so the same
    /// limit value can be reused across consecutive runs).
    pub fn for_ticks(ticks: u64) -> Self {
        RunLimit {
            deadline: Deadline::TicksFromNow(ticks),
            max_events: u64::MAX,
        }
    }

    /// Run until the given absolute time.
    pub fn until(deadline: SimTime) -> Self {
        RunLimit {
            deadline: Deadline::Absolute(deadline),
            max_events: u64::MAX,
        }
    }

    /// Run until a component stops the simulation or the queue drains.
    pub fn unbounded() -> Self {
        RunLimit {
            deadline: Deadline::Absolute(SimTime::MAX),
            max_events: u64::MAX,
        }
    }

    /// Caps the number of dispatched events.
    pub fn with_max_events(mut self, max_events: u64) -> Self {
        self.max_events = max_events;
        self
    }

    /// The absolute deadline this limit means when starting from `now`.
    fn resolve(&self, now: SimTime) -> SimTime {
        match self.deadline {
            Deadline::Absolute(t) => t,
            Deadline::TicksFromNow(ticks) => now.saturating_add(ticks),
        }
    }
}

/// Result of one [`Simulator::run`] call.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Simulated time when the run ended.
    pub end_time: SimTime,
    /// Counter deltas for this run only.
    pub stats: KernelStats,
    /// Host wall-clock time the run took.
    pub wall: Duration,
    /// Why the run ended early, if a component stopped it.
    pub stop: Option<StopReason>,
}

impl RunSummary {
    /// Simulated ticks per host second — the *simulation speed* metric the
    /// paper's evaluation reports (higher is better).
    pub fn ticks_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            f64::INFINITY
        } else {
            self.end_time.ticks() as f64 / secs
        }
    }

    /// Whether the run ended because a component signalled an error.
    pub fn is_error(&self) -> bool {
        self.stop.as_ref().is_some_and(StopReason::is_error)
    }
}

#[derive(Debug)]
struct ClockDef {
    wire: Wire,
    half_period: u64,
}

/// Discrete-event simulator with SystemC-style delta cycles.
///
/// Build phase: declare signals with [`wire`](Self::wire), register
/// components with [`add_component`](Self::add_component), connect
/// sensitivities with [`subscribe`](Self::subscribe) and create clocks with
/// [`add_clock`](Self::add_clock). Run phase: [`run_for`](Self::run_for) /
/// [`run`](Self::run).
///
/// # Examples
///
/// ```
/// use dmi_kernel::{Component, Ctx, Edge, Simulator, Wake};
///
/// /// Toggles its output on every rising clock edge.
/// struct Blinker {
///     clk: dmi_kernel::Wire,
///     out: dmi_kernel::Wire,
///     state: bool,
/// }
/// impl Component for Blinker {
///     fn name(&self) -> &str { "blinker" }
///     fn wake(&mut self, ctx: &mut Ctx<'_>) {
///         if ctx.is_signal(self.clk) {
///             self.state = !self.state;
///             ctx.write_bit(self.out, self.state);
///         }
///     }
///     fn as_any(&self) -> &dyn std::any::Any { self }
///     fn as_any_mut(&mut self) -> &mut dyn std::any::Any { self }
/// }
///
/// let mut sim = Simulator::new();
/// let clk = sim.add_clock("clk", 10);
/// let out = sim.wire("out", 1);
/// let id = sim.add_component(Box::new(Blinker { clk, out, state: false }));
/// sim.subscribe(id, clk, Edge::Rising);
/// sim.run_for(100);
/// assert!(sim.stats().wakes > 5);
/// ```
#[derive(Debug)]
pub struct Simulator {
    comps: Vec<Option<Box<dyn Component>>>,
    comp_names: Vec<String>,
    signals: SignalBoard,
    queue: RunQueue,
    clocks: Vec<ClockDef>,
    time: SimTime,
    stop: Option<StopReason>,
    stats: KernelStats,
    tracer: Tracer,
    delta_limit: u32,
    // Scratch buffers reused across deltas to avoid per-cycle allocation.
    changes: Vec<Change>,
    woken: Vec<bool>,
    woken_list: Vec<ComponentId>,
    /// Signal wakes produced by the current delta's update phase, carried
    /// directly to the next delta instead of through the event queue.
    /// Dispatch order is identical (queued timers at `(t, delta + 1)`
    /// always precede the update phase's wakes in sequence number), but
    /// the ~one-wake-per-subscriber-per-edge traffic skips the priority
    /// queue entirely — the single hottest path of clocked systems.
    pending_wakes: Vec<(ComponentId, crate::signal::SignalId)>,
}

impl std::fmt::Debug for dyn Component {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Component({})", self.name())
    }
}

impl Default for Simulator {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulator {
    /// Creates an empty simulator.
    pub fn new() -> Self {
        Simulator {
            comps: Vec::new(),
            comp_names: Vec::new(),
            signals: SignalBoard::new(),
            queue: RunQueue::new(),
            clocks: Vec::new(),
            time: SimTime::ZERO,
            stop: None,
            stats: KernelStats::default(),
            tracer: Tracer::new(),
            delta_limit: 10_000,
            changes: Vec::new(),
            woken: Vec::new(),
            woken_list: Vec::new(),
            pending_wakes: Vec::new(),
        }
    }

    /// Declares a signal.
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside `1..=64`.
    pub fn wire(&mut self, name: impl Into<String>, width: u8) -> Wire {
        self.signals.declare(name, width)
    }

    /// Registers a component and schedules its [`Wake::Start`] at time zero.
    pub fn add_component(&mut self, component: Box<dyn Component>) -> ComponentId {
        let id = ComponentId::from_raw(self.comps.len());
        self.comp_names.push(component.name().to_owned());
        self.comps.push(Some(component));
        self.woken.push(false);
        self.queue.push(self.time, 0, EventKind::Start(id));
        id
    }

    /// Subscribes a component to changes of `wire` matching `edge`.
    pub fn subscribe(&mut self, component: ComponentId, wire: Wire, edge: Edge) {
        self.signals.subscribe(wire, component, edge);
    }

    /// Creates a kernel-managed clock signal with the given full period in
    /// ticks. The clock starts low; its first rising edge fires at
    /// `t = period`, then edges alternate every `period / 2`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is not an even number of at least 2 ticks.
    pub fn add_clock(&mut self, name: impl Into<String>, period: u64) -> Wire {
        assert!(
            period >= 2 && period.is_multiple_of(2),
            "clock period must be even and >= 2, got {period}"
        );
        let wire = self.signals.declare(name, 1);
        let idx = self.clocks.len();
        self.clocks.push(ClockDef {
            wire,
            half_period: period / 2,
        });
        self.queue
            .push(SimTime::from_ticks(period), 0, EventKind::ClockToggle(idx));
        wire
    }

    /// Marks a signal for tracing; its committed changes are recorded and
    /// can be rendered to VCD with [`write_vcd`](Self::write_vcd).
    pub fn trace(&mut self, wire: Wire) {
        self.signals.set_traced(wire.id(), true);
        self.tracer.add_signal(wire.id());
    }

    /// Traces every signal whose hierarchical name satisfies `pred`.
    /// Returns the number of signals now being traced.
    ///
    /// Convenient for post-build instrumentation:
    /// `sim.trace_matching(|n| n.starts_with("cpu0.bus"))`.
    pub fn trace_matching(&mut self, pred: impl Fn(&str) -> bool) -> usize {
        let ids: Vec<_> = self
            .signals
            .iter_meta()
            .filter(|(_, name, _)| pred(name))
            .map(|(id, _, _)| id)
            .collect();
        for id in &ids {
            self.signals.set_traced(*id, true);
            self.tracer.add_signal(*id);
        }
        ids.len()
    }

    /// Current simulated time.
    pub fn time(&self) -> SimTime {
        self.time
    }

    /// Cumulative kernel statistics across all runs.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// The signal board (for name/width introspection and test harnesses).
    pub fn signals(&self) -> &SignalBoard {
        &self.signals
    }

    /// The recorded trace.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Writes all traced signals as a VCD file covering the run so far.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from writing the file.
    pub fn write_vcd(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        self.tracer.write_vcd(path, &self.signals, self.time)
    }

    /// Immutable access to a component by id, downcast to its concrete type.
    ///
    /// Returns `None` if the id is stale or `T` is not the component's type.
    pub fn component<T: 'static>(&self, id: ComponentId) -> Option<&T> {
        self.comps
            .get(id.index())?
            .as_ref()?
            .as_any()
            .downcast_ref::<T>()
    }

    /// Type-erased access to a component by id (for callers holding a
    /// probe function instead of a concrete type, e.g. bus-master stats
    /// collection).
    pub fn component_any(&self, id: ComponentId) -> Option<&dyn std::any::Any> {
        Some(self.comps.get(id.index())?.as_ref()?.as_any())
    }

    /// Mutable access to a component by id, downcast to its concrete type.
    pub fn component_mut<T: 'static>(&mut self, id: ComponentId) -> Option<&mut T> {
        self.comps
            .get_mut(id.index())?
            .as_mut()?
            .as_any_mut()
            .downcast_mut::<T>()
    }

    /// The name a component was registered with.
    pub fn component_name(&self, id: ComponentId) -> &str {
        &self.comp_names[id.index()]
    }

    /// Number of registered components.
    pub fn component_count(&self) -> usize {
        self.comps.len()
    }

    /// Forces a signal's current value before the first run (test stimuli).
    pub fn poke(&mut self, wire: Wire, value: u64) {
        self.signals.poke(wire, value);
    }

    /// Reads a signal's committed value.
    pub fn peek(&self, wire: Wire) -> u64 {
        self.signals.read(wire)
    }

    /// Runs for `ticks` ticks past the current time.
    pub fn run_for(&mut self, ticks: u64) -> RunSummary {
        self.run(RunLimit::for_ticks(ticks))
    }

    /// Runs until a component stops the simulation, the event queue drains,
    /// or `max_ticks` elapse — whichever comes first.
    pub fn run_until_stopped(&mut self, max_ticks: u64) -> RunSummary {
        self.run(RunLimit::for_ticks(max_ticks))
    }

    /// Runs the event loop under the given limit.
    ///
    /// A previously recorded stop reason is cleared so the simulation can be
    /// resumed after inspection.
    pub fn run(&mut self, limit: RunLimit) -> RunSummary {
        let mut queue = std::mem::take(&mut self.queue);
        let summary = self.run_core(limit, &mut queue);
        self.queue = queue;
        summary
    }

    fn run_core(&mut self, limit: RunLimit, queue: &mut RunQueue) -> RunSummary {
        let wall_start = Instant::now();
        let stats_start = self.stats;
        self.stop = None;
        let mut events_left = limit.max_events;
        let deadline = limit.resolve(self.time);

        'outer: while self.stop.is_none() {
            let Some((t, first_delta)) = queue.peek_key() else {
                break;
            };
            if t > deadline {
                self.time = deadline;
                break;
            }
            self.time = t;
            self.stats.time_steps += 1;

            let mut delta = first_delta;
            loop {
                // Evaluate: dispatch every queued event scheduled for
                // (t, delta) — their sequence numbers always precede the
                // previous update phase's signal wakes…
                while let Some(ev) = queue.pop_at(t, delta) {
                    if events_left == 0 {
                        self.stop = Some(StopReason::Error("event budget exhausted".into()));
                        self.requeue_pending_wakes(queue, t, delta);
                        break 'outer;
                    }
                    events_left -= 1;
                    self.stats.events += 1;
                    match ev.kind {
                        EventKind::Start(cid) => self.dispatch(queue, cid, Wake::Start, t, delta),
                        EventKind::Wake(cid, tag) => self.dispatch(queue, cid, Wake::Timer(tag), t, delta),
                        EventKind::SignalWake(cid, sid) => {
                            self.dispatch(queue, cid, Wake::Signal(sid), t, delta)
                        }
                        EventKind::ClockToggle(k) => {
                            let clock = &self.clocks[k];
                            let cur = self.signals.read(clock.wire);
                            self.signals.write(clock.wire, cur ^ 1);
                            let next_t = t + clock.half_period;
                            queue.push(next_t, 0, EventKind::ClockToggle(k));
                        }
                    }
                }
                // …then the carried signal wakes, in subscription-scan
                // order — the exact order the queued `SignalWake` events
                // used to pop in, without the queue round-trip.
                if !self.pending_wakes.is_empty() {
                    let mut wakes = std::mem::take(&mut self.pending_wakes);
                    for (i, &(cid, sid)) in wakes.iter().enumerate() {
                        if events_left == 0 {
                            // Re-queue the undispatched tail at its due
                            // (t, delta) so a resumed run replays exactly.
                            for &(cid, sid) in &wakes[i..] {
                                queue.push(t, delta, EventKind::SignalWake(cid, sid));
                            }
                            self.stop =
                                Some(StopReason::Error("event budget exhausted".into()));
                            break 'outer;
                        }
                        events_left -= 1;
                        self.stats.events += 1;
                        self.dispatch(queue, cid, Wake::Signal(sid), t, delta);
                    }
                    wakes.clear();
                    self.pending_wakes = wakes; // keep the capacity
                }

                // Update: commit writes, wake subscribers in the next delta.
                self.changes.clear();
                self.signals.commit(&mut self.changes);
                self.stats.deltas += 1;

                for i in 0..self.changes.len() {
                    let ch = self.changes[i];
                    if self.signals.is_traced(ch.signal) {
                        self.tracer.record(t, ch.signal, ch.new);
                    }
                    // Clone-free iteration: subscriber lists are only
                    // mutated during build, never during a run.
                    let subs = self.signals.subscribers(ch.signal).len();
                    for s in 0..subs {
                        let (cid, edge) = self.signals.subscribers(ch.signal)[s];
                        if edge.matches(ch.old, ch.new) && !self.woken[cid.index()] {
                            self.woken[cid.index()] = true;
                            self.woken_list.push(cid);
                            self.pending_wakes.push((cid, ch.signal));
                        }
                    }
                }
                for cid in self.woken_list.drain(..) {
                    self.woken[cid.index()] = false;
                }

                if self.stop.is_some() {
                    // A stopping run may leave this delta's subscriber
                    // wakes undispatched: park them in the queue at their
                    // due (t, delta + 1) so resuming the simulation
                    // replays them exactly — identical to the behaviour
                    // when every wake was a queued event.
                    self.requeue_pending_wakes(queue, t, delta + 1);
                    break;
                }
                // Continue while this time step has more work: carried
                // wakes always run in the next delta; queued events at a
                // later delta of `t` otherwise set the next delta.
                let next = if self.pending_wakes.is_empty() {
                    match queue.peek_key() {
                        Some((tt, dd)) if tt == t => Some(dd),
                        _ => None,
                    }
                } else {
                    Some(delta + 1)
                };
                match next {
                    Some(dd) => {
                        if dd - first_delta > self.delta_limit {
                            self.stop = Some(StopReason::Error(format!(
                                "delta-cycle limit ({}) exceeded at {t}: combinational loop?",
                                self.delta_limit
                            )));
                            self.requeue_pending_wakes(queue, t, dd);
                            break;
                        }
                        delta = dd;
                    }
                    None => break,
                }
            }
        }

        debug_assert!(
            self.pending_wakes.is_empty(),
            "carried wakes must never outlive a run call"
        );
        RunSummary {
            end_time: self.time,
            stats: self.stats.since(&stats_start),
            wall: wall_start.elapsed(),
            stop: self.stop.clone(),
        }
    }

    /// Moves any carried-but-undispatched subscriber wakes back into the
    /// event queue at `(t, delta)`, so an interrupted run can resume with
    /// exactly the dispatch sequence the fully-queued implementation had.
    fn requeue_pending_wakes(&mut self, queue: &mut RunQueue, t: SimTime, delta: u32) {
        for (cid, sid) in self.pending_wakes.drain(..) {
            queue.push(t, delta, EventKind::SignalWake(cid, sid));
        }
    }

    fn dispatch(
        &mut self,
        queue: &mut RunQueue,
        cid: ComponentId,
        cause: Wake,
        time: SimTime,
        delta: u32,
    ) {
        let mut comp = self.comps[cid.index()]
            .take()
            .expect("component re-entered during its own wake");
        {
            let mut ctx = Ctx {
                signals: &mut self.signals,
                queue,
                time,
                delta,
                cause,
                self_id: cid,
                stop: &mut self.stop,
            };
            comp.wake(&mut ctx);
        }
        self.comps[cid.index()] = Some(comp);
        self.stats.wakes += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;

    /// Counts rising edges of a clock.
    struct EdgeCounter {
        clk: Wire,
        edges: u64,
    }
    impl Component for EdgeCounter {
        fn name(&self) -> &str {
            "edge_counter"
        }
        fn wake(&mut self, ctx: &mut Ctx<'_>) {
            if ctx.is_signal(self.clk) {
                self.edges += 1;
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn clock_generates_expected_edges() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", 10);
        let id = sim.add_component(Box::new(EdgeCounter { clk, edges: 0 }));
        sim.subscribe(id, clk, Edge::Rising);
        sim.run_for(100);
        // Rising edges at t = 10, 20, ..., 100 -> 10 edges.
        let c: &EdgeCounter = sim.component(id).unwrap();
        assert_eq!(c.edges, 10);
    }

    #[test]
    fn falling_edges_offset_by_half_period() {
        struct FallCounter {
            clk: Wire,
            times: Vec<u64>,
        }
        impl Component for FallCounter {
            fn name(&self) -> &str {
                "fall"
            }
            fn wake(&mut self, ctx: &mut Ctx<'_>) {
                if ctx.is_signal(self.clk) {
                    self.times.push(ctx.time().ticks());
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", 10);
        let id = sim.add_component(Box::new(FallCounter {
            clk,
            times: vec![],
        }));
        sim.subscribe(id, clk, Edge::Falling);
        sim.run_for(40);
        let c: &FallCounter = sim.component(id).unwrap();
        assert_eq!(c.times, vec![15, 25, 35]);
    }

    /// Two-stage pipeline through signals: checks flip-flop semantics, i.e.
    /// a clocked reader sees the value from *before* the edge.
    struct Stage {
        clk: Wire,
        input: Wire,
        output: Wire,
        seen: Vec<u64>,
    }
    impl Component for Stage {
        fn name(&self) -> &str {
            "stage"
        }
        fn wake(&mut self, ctx: &mut Ctx<'_>) {
            if ctx.is_signal(self.clk) {
                let v = ctx.read(self.input);
                self.seen.push(v);
                ctx.write(self.output, v + 1);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn registered_semantics_between_clocked_components() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", 10);
        let a = sim.wire("a", 32);
        let b = sim.wire("b", 32);
        // stage1: a -> b (+1), stage2: b -> a (+1). Values advance one hop
        // per cycle; both read pre-edge values.
        let s1 = sim.add_component(Box::new(Stage {
            clk,
            input: a,
            output: b,
            seen: vec![],
        }));
        let s2 = sim.add_component(Box::new(Stage {
            clk,
            input: b,
            output: a,
            seen: vec![],
        }));
        sim.subscribe(s1, clk, Edge::Rising);
        sim.subscribe(s2, clk, Edge::Rising);
        sim.run_for(30); // edges at 10, 20, 30
        let st1: &Stage = sim.component(s1).unwrap();
        let st2: &Stage = sim.component(s2).unwrap();
        // cycle1: both read 0. cycle2: s1 reads a=1 (s2 wrote 0+1),
        // s2 reads b=1. cycle3: both read 2.
        assert_eq!(st1.seen, vec![0, 1, 2]);
        assert_eq!(st2.seen, vec![0, 1, 2]);
    }

    /// A combinational inverter: output follows !input within the same time
    /// step via an extra delta cycle.
    struct Inverter {
        input: Wire,
        output: Wire,
    }
    impl Component for Inverter {
        fn name(&self) -> &str {
            "inv"
        }
        fn wake(&mut self, ctx: &mut Ctx<'_>) {
            let v = ctx.read_bit(self.input);
            ctx.write_bit(self.output, !v);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn combinational_logic_settles_within_time_step() {
        let mut sim = Simulator::new();
        let a = sim.wire("a", 1);
        let b = sim.wire("b", 1);
        let inv = sim.add_component(Box::new(Inverter {
            input: a,
            output: b,
        }));
        sim.subscribe(inv, a, Edge::Any);

        struct Driver {
            a: Wire,
        }
        impl Component for Driver {
            fn name(&self) -> &str {
                "drv"
            }
            fn wake(&mut self, ctx: &mut Ctx<'_>) {
                match ctx.cause() {
                    Wake::Start => {
                        ctx.schedule_in(5, 1);
                    }
                    Wake::Timer(_) => {
                        ctx.write_bit(self.a, true);
                    }
                    _ => {}
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        sim.add_component(Box::new(Driver { a }));
        // After the Start wake the inverter has settled b = !0 = 1.
        sim.run_for(2);
        assert_eq!(sim.peek(a), 0);
        assert_eq!(sim.peek(b), 1, "inverter settled from Start wake");
        // After the driver raises a at t=5 the inverter follows within the
        // same time step (extra delta cycles, no tick advance).
        sim.run_for(18);
        assert_eq!(sim.peek(a), 1);
        assert_eq!(sim.peek(b), 0, "inverter output follows input");
    }

    /// Ring oscillator: inverter feeding itself must hit the delta limit
    /// and stop with an error rather than hanging.
    #[test]
    fn combinational_loop_detected() {
        let mut sim = Simulator::new();
        let a = sim.wire("a", 1);
        let inv = sim.add_component(Box::new(Inverter {
            input: a,
            output: a,
        }));
        sim.subscribe(inv, a, Edge::Any);

        struct Kick {
            a: Wire,
        }
        impl Component for Kick {
            fn name(&self) -> &str {
                "kick"
            }
            fn wake(&mut self, ctx: &mut Ctx<'_>) {
                if ctx.cause() == Wake::Start {
                    ctx.write_bit(self.a, true);
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        sim.add_component(Box::new(Kick { a }));
        let summary = sim.run_for(10);
        assert!(summary.is_error());
        assert!(summary
            .stop
            .unwrap()
            .message()
            .contains("delta-cycle limit"));
    }

    #[test]
    fn stop_finishes_run_early() {
        struct Stopper;
        impl Component for Stopper {
            fn name(&self) -> &str {
                "stopper"
            }
            fn wake(&mut self, ctx: &mut Ctx<'_>) {
                match ctx.cause() {
                    Wake::Start => ctx.schedule_in(7, 0),
                    Wake::Timer(_) => ctx.stop("workload complete"),
                    _ => {}
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut sim = Simulator::new();
        sim.add_clock("clk", 2);
        sim.add_component(Box::new(Stopper));
        let summary = sim.run_for(1000);
        assert_eq!(summary.end_time.ticks(), 7);
        assert!(!summary.is_error());
        assert_eq!(summary.stop.unwrap().message(), "workload complete");
    }

    #[test]
    fn resume_after_stop_replays_carried_wakes() {
        // A component writes a wire and stops the run in the same delta:
        // the subscriber wake produced by that delta's update phase is
        // still pending when the run returns. Resuming must dispatch it
        // at the original simulated time — the exact behaviour of the
        // fully-queued SignalWake implementation.
        struct WriteAndStop {
            w: Wire,
        }
        impl Component for WriteAndStop {
            fn name(&self) -> &str {
                "write_and_stop"
            }
            fn wake(&mut self, ctx: &mut Ctx<'_>) {
                match ctx.cause() {
                    Wake::Start => ctx.schedule_in(5, 0),
                    Wake::Timer(_) => {
                        ctx.write_bit(self.w, true);
                        ctx.stop("paused mid-delta");
                    }
                    _ => {}
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        struct TimeStamper {
            w: Wire,
            seen: Vec<u64>,
        }
        impl Component for TimeStamper {
            fn name(&self) -> &str {
                "stamper"
            }
            fn wake(&mut self, ctx: &mut Ctx<'_>) {
                if ctx.is_signal(self.w) {
                    self.seen.push(ctx.time().ticks());
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut sim = Simulator::new();
        let w = sim.wire("w", 1);
        sim.add_component(Box::new(WriteAndStop { w }));
        let sid = sim.add_component(Box::new(TimeStamper { w, seen: vec![] }));
        sim.subscribe(sid, w, Edge::Rising);
        let summary = sim.run_for(100);
        assert_eq!(summary.stop.unwrap().message(), "paused mid-delta");
        assert!(
            sim.component::<TimeStamper>(sid).unwrap().seen.is_empty(),
            "the wake was parked, not dispatched"
        );
        sim.run_for(100);
        assert_eq!(
            sim.component::<TimeStamper>(sid).unwrap().seen,
            vec![5],
            "resumed wake fires at its original time"
        );
    }

    #[test]
    fn event_budget_stops_runaway() {
        let mut sim = Simulator::new();
        sim.add_clock("clk", 2);
        let summary = sim.run(RunLimit::unbounded().with_max_events(100));
        assert!(summary.is_error());
        assert!(summary.stop.unwrap().message().contains("event budget"));
    }

    #[test]
    fn timer_zero_fires_next_delta_same_time() {
        struct Chain {
            fired_at: Vec<(u64, u32)>,
        }
        impl Component for Chain {
            fn name(&self) -> &str {
                "chain"
            }
            fn wake(&mut self, ctx: &mut Ctx<'_>) {
                self.fired_at.push((ctx.time().ticks(), ctx.delta()));
                match ctx.cause() {
                    Wake::Start => ctx.schedule_in(0, 1),
                    Wake::Timer(1) => ctx.schedule_in(0, 2),
                    _ => {}
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut sim = Simulator::new();
        let id = sim.add_component(Box::new(Chain { fired_at: vec![] }));
        sim.run_for(5);
        let c: &Chain = sim.component(id).unwrap();
        assert_eq!(c.fired_at.len(), 3);
        assert!(c.fired_at.iter().all(|&(t, _)| t == 0));
        assert_eq!(c.fired_at[0].1, 0);
        assert!(c.fired_at[1].1 > c.fired_at[0].1);
        assert!(c.fired_at[2].1 > c.fired_at[1].1);
    }

    #[test]
    fn component_downcast_and_names() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", 4);
        let id = sim.add_component(Box::new(EdgeCounter { clk, edges: 0 }));
        assert_eq!(sim.component_name(id), "edge_counter");
        assert_eq!(sim.component_count(), 1);
        assert!(sim.component::<EdgeCounter>(id).is_some());
        assert!(sim.component::<Inverter>(id).is_none());
        sim.component_mut::<EdgeCounter>(id).unwrap().edges = 5;
        assert_eq!(sim.component::<EdgeCounter>(id).unwrap().edges, 5);
    }

    #[test]
    fn resume_after_deadline_continues_time() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", 10);
        let id = sim.add_component(Box::new(EdgeCounter { clk, edges: 0 }));
        sim.subscribe(id, clk, Edge::Rising);
        sim.run_for(50);
        assert_eq!(sim.component::<EdgeCounter>(id).unwrap().edges, 5);
        sim.run_for(50);
        assert_eq!(sim.component::<EdgeCounter>(id).unwrap().edges, 10);
        assert_eq!(sim.time().ticks(), 100);
    }

    #[test]
    fn for_ticks_is_relative_to_current_time() {
        // Regression: `RunLimit::for_ticks(n)` used to construct an
        // *absolute* deadline of `n`, so a second run with the same limit
        // made no progress. It must mean "n ticks past the current time",
        // resolved when the run starts.
        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", 10);
        let id = sim.add_component(Box::new(EdgeCounter { clk, edges: 0 }));
        sim.subscribe(id, clk, Edge::Rising);
        let limit = RunLimit::for_ticks(50);
        sim.run(limit);
        assert_eq!(sim.time().ticks(), 50);
        sim.run(limit); // the very same limit value advances again
        assert_eq!(sim.time().ticks(), 100);
        assert_eq!(sim.component::<EdgeCounter>(id).unwrap().edges, 10);
    }

    #[test]
    fn vcd_tracing_records_clock() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", 10);
        sim.trace(clk);
        sim.run_for(20);
        let recs = sim.tracer().records();
        assert_eq!(recs.len(), 3, "edges at 10, 15, 20");
        let vcd = sim.tracer().to_vcd(sim.signals(), sim.time());
        assert!(vcd.contains("$var wire 1 ! clk $end"));
        assert!(vcd.contains("#10\n1!"));
        assert!(vcd.contains("#15\n0!"));
    }
}
