//! Simulation time.
//!
//! Time is measured in integer *ticks*. The kernel attaches no physical unit
//! to a tick; by convention the systems built on top of this crate use one
//! tick per clock-phase step and derive physical time from the configured
//! clock period. Keeping time integral makes event ordering exact and runs
//! reproducible.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in ticks since simulation start.
///
/// `SimTime` is a transparent wrapper around `u64` providing checked
/// arithmetic and a stable `Display` format. It orders totally, so it can be
/// used directly as an event-queue key.
///
/// # Examples
///
/// ```
/// use dmi_kernel::SimTime;
///
/// let t = SimTime::from_ticks(10) + 5;
/// assert_eq!(t.ticks(), 15);
/// assert!(t > SimTime::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time; used as an "unbounded" run limit.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from a raw tick count.
    #[inline]
    pub const fn from_ticks(ticks: u64) -> Self {
        SimTime(ticks)
    }

    /// Returns the raw tick count.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Checked addition of a tick delta; `None` on overflow.
    #[inline]
    pub fn checked_add(self, ticks: u64) -> Option<Self> {
        self.0.checked_add(ticks).map(SimTime)
    }

    /// Saturating addition of a tick delta.
    #[inline]
    pub fn saturating_add(self, ticks: u64) -> Self {
        SimTime(self.0.saturating_add(ticks))
    }

    /// Ticks elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    #[inline]
    pub fn since(self, earlier: SimTime) -> u64 {
        debug_assert!(earlier.0 <= self.0, "since() called with a later time");
        self.0.wrapping_sub(earlier.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}t", self.0)
    }
}

impl From<u64> for SimTime {
    fn from(ticks: u64) -> Self {
        SimTime(ticks)
    }
}

impl From<SimTime> for u64 {
    fn from(t: SimTime) -> u64 {
        t.0
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: u64) -> SimTime {
        SimTime(self.0 + rhs)
    }
}

impl AddAssign<u64> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: SimTime) -> u64 {
        self.0 - rhs.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        assert_eq!(SimTime::ZERO.ticks(), 0);
        assert_eq!(SimTime::from_ticks(42).ticks(), 42);
        assert_eq!(u64::from(SimTime::from_ticks(7)), 7);
        assert_eq!(SimTime::from(9u64).ticks(), 9);
    }

    #[test]
    fn ordering_is_total_on_ticks() {
        assert!(SimTime::from_ticks(1) < SimTime::from_ticks(2));
        assert!(SimTime::MAX > SimTime::ZERO);
        assert_eq!(SimTime::from_ticks(5), SimTime::from_ticks(5));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ticks(10);
        assert_eq!((t + 5).ticks(), 15);
        assert_eq!(t.checked_add(5), Some(SimTime::from_ticks(15)));
        assert_eq!(SimTime::MAX.checked_add(1), None);
        assert_eq!(SimTime::MAX.saturating_add(10), SimTime::MAX);
        assert_eq!(SimTime::from_ticks(15) - t, 5);
        assert_eq!(SimTime::from_ticks(15).since(t), 5);
        let mut m = t;
        m += 3;
        assert_eq!(m.ticks(), 13);
    }

    #[test]
    fn display_format() {
        assert_eq!(SimTime::from_ticks(123).to_string(), "123t");
        assert_eq!(SimTime::ZERO.to_string(), "0t");
    }
}
