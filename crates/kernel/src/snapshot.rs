//! Versioned, checksummed binary snapshots of simulation state.
//!
//! A [`Snapshot`] is a named-section container: each state-owning layer
//! (kernel, components, fault controller, system metadata) serializes
//! itself into an opaque payload via [`StateWriter`] and reads it back
//! via [`StateReader`]. The container frames every section with a name,
//! a length, and a CRC-32 so corrupt or truncated input is detected at
//! load time and reported as a typed [`SnapshotError`] — never a panic.
//!
//! ## Wire format (version 1)
//!
//! ```text
//! magic     [u8; 4]   b"DMI\x1a"
//! version   u32 LE    SNAPSHOT_VERSION
//! sections  u32 LE    number of sections
//! per section:
//!   name_len    u32 LE
//!   name        [u8; name_len]  UTF-8
//!   payload_len u64 LE
//!   crc32       u32 LE          CRC-32 (IEEE) of the payload bytes
//!   payload     [u8; payload_len]
//! ```
//!
//! All integers are little-endian. Section payloads are themselves
//! streams of the primitive encodings produced by [`StateWriter`]
//! (fixed-width LE integers, `0/1` booleans, length-prefixed byte
//! strings); the payload layout is owned by whichever layer wrote the
//! section and is validated by that layer on load.
//!
//! ## Versioning policy
//!
//! [`SNAPSHOT_VERSION`] is bumped whenever any section's payload layout
//! changes incompatibly. Loaders accept exactly the current version;
//! there is no cross-version migration — snapshots are a same-build
//! persistence and forking mechanism, not a long-term archive format.

use std::fmt;
use std::path::Path;

/// Magic bytes at the start of every snapshot.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"DMI\x1a";

/// Current snapshot format version. Bumped on any incompatible change
/// to a section payload layout.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Typed error for every way snapshot encoding or decoding can fail.
///
/// Corrupt, truncated, or mismatched input always surfaces as one of
/// these variants; decoding never panics.
#[derive(Debug)]
pub enum SnapshotError {
    /// Reading or writing the snapshot file failed.
    Io(std::io::Error),
    /// The input does not start with [`SNAPSHOT_MAGIC`].
    BadMagic {
        /// The bytes actually found (zero-padded if short).
        found: [u8; 4],
    },
    /// The input declares a format version this build does not read.
    UnsupportedVersion {
        /// The version found in the header.
        found: u32,
    },
    /// The input ended before a complete field could be read.
    Truncated {
        /// What was being decoded when the input ran out.
        context: &'static str,
    },
    /// A section's payload does not match its recorded CRC-32.
    ChecksumMismatch {
        /// Name of the damaged section.
        section: String,
    },
    /// A section required by the loader is absent.
    MissingSection {
        /// Name of the absent section.
        name: String,
    },
    /// A structurally invalid value inside an otherwise well-framed
    /// payload (bad enum tag, non-boolean byte, duplicate section,
    /// out-of-range index, trailing bytes, ...).
    Corrupt {
        /// What was invalid.
        context: String,
    },
    /// The snapshot is well-formed but describes a different system
    /// topology than the restore target (component/clock/signal
    /// counts, component names, memory kinds, ...).
    Mismatch {
        /// What differed.
        context: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::BadMagic { found } => {
                write!(f, "not a snapshot: bad magic {found:02x?}")
            }
            SnapshotError::UnsupportedVersion { found } => write!(
                f,
                "unsupported snapshot version {found} (this build reads {SNAPSHOT_VERSION})"
            ),
            SnapshotError::Truncated { context } => {
                write!(f, "snapshot truncated while reading {context}")
            }
            SnapshotError::ChecksumMismatch { section } => {
                write!(f, "snapshot section `{section}` failed its CRC check")
            }
            SnapshotError::MissingSection { name } => {
                write!(f, "snapshot is missing required section `{name}`")
            }
            SnapshotError::Corrupt { context } => {
                write!(f, "snapshot corrupt: {context}")
            }
            SnapshotError::Mismatch { context } => {
                write!(f, "snapshot does not match the restore target: {context}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320)

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `bytes`, as used for section checksums.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// CRC-framed records (append-only journals)

/// Result of scanning one CRC-framed record off the head of a buffer —
/// see [`next_framed_record`].
#[derive(Debug, PartialEq, Eq)]
pub enum FramedRecord<'a> {
    /// A complete, CRC-valid record: its payload and the total bytes
    /// consumed (framing + payload).
    Complete {
        /// The record payload.
        payload: &'a [u8],
        /// Bytes of the buffer this record occupied, framing included.
        consumed: usize,
    },
    /// Bytes remain but do not form a complete, CRC-valid record: a torn
    /// tail (interrupted append) or trailing corruption. Readers stop
    /// here and discard the rest.
    Torn,
    /// The buffer is empty: a clean end.
    End,
}

/// Frames `payload` as one append-only journal record:
/// `[payload_len u32 LE][crc32 u32 LE][payload]`.
///
/// The framing is the single-record analogue of the [`Snapshot`]
/// container's section framing: a length so readers can skip without
/// parsing, and a CRC-32 (IEEE) of the payload so a torn or corrupted
/// tail is detected instead of misparsed. Intended for crash-safe
/// journals where records are appended one `write` at a time and the
/// file may be killed mid-append; pair with [`next_framed_record`].
pub fn frame_record(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Scans one [`frame_record`]-framed record off the head of `buf`.
///
/// Torn-tail semantics: an incomplete header, a payload shorter than its
/// declared length, or a CRC mismatch all yield [`FramedRecord::Torn`] —
/// the reader's cue to stop and treat everything from here on as the
/// debris of an interrupted append. This deliberately does not
/// distinguish "truncated" from "bit-flipped": an append-only journal
/// recovers identically from both by dropping the tail.
pub fn next_framed_record(buf: &[u8]) -> FramedRecord<'_> {
    if buf.is_empty() {
        return FramedRecord::End;
    }
    if buf.len() < 8 {
        return FramedRecord::Torn;
    }
    let len = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    let Some(payload) = buf.get(8..8 + len) else {
        return FramedRecord::Torn;
    };
    if crc32(payload) != crc {
        return FramedRecord::Torn;
    }
    FramedRecord::Complete {
        payload,
        consumed: 8 + len,
    }
}

/// Upper bound on a single frame's declared payload length accepted by
/// [`FrameStream`]: 64 MiB. A live stream (unlike a file scan) cannot
/// look ahead to validate a CRC before buffering the payload, so a
/// corrupted length field must not be allowed to demand an unbounded
/// allocation first — anything larger than the biggest plausible
/// snapshot is treated as corruption outright.
pub const MAX_FRAME_LEN: usize = 64 * 1024 * 1024;

/// Incremental decoder for a live stream of [`frame_record`]-framed
/// records — the streaming twin of [`next_framed_record`] for byte
/// sources that arrive in arbitrary chunks (pipes between a farm
/// supervisor and its worker processes, nonblocking fds) rather than as
/// one scannable buffer.
///
/// Feed whatever bytes the fd produced with [`feed`](Self::feed); drain
/// complete, CRC-valid payloads with [`next_payload`](Self::next_payload).
/// An incomplete frame simply waits for more bytes. A frame whose CRC
/// does not match its payload, or whose declared length exceeds
/// [`MAX_FRAME_LEN`], *latches* the stream as corrupt
/// ([`is_corrupt`](Self::is_corrupt)): framing offers no way to resync
/// past a bad frame, so everything from it on is debris — the same
/// torn-tail semantics a journal scan applies, and the reader's cue to
/// treat the peer as dead. EOF mid-frame is the caller's to detect: end
/// of input with [`buffered`](Self::buffered)` > 0` is a torn tail.
#[derive(Debug, Default)]
pub struct FrameStream {
    buf: Vec<u8>,
    corrupt: bool,
}

impl FrameStream {
    /// An empty stream decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes read off the wire.
    pub fn feed(&mut self, bytes: &[u8]) {
        if !self.corrupt {
            self.buf.extend_from_slice(bytes);
        }
    }

    /// Pops the next complete, CRC-valid payload, if one is fully
    /// buffered. `None` means "need more bytes" — or that the stream
    /// has latched corrupt (check [`is_corrupt`](Self::is_corrupt)).
    pub fn next_payload(&mut self) -> Option<Vec<u8>> {
        if self.corrupt || self.buf.len() < 8 {
            return None;
        }
        let len = u32::from_le_bytes(self.buf[0..4].try_into().unwrap()) as usize;
        if len > MAX_FRAME_LEN {
            self.corrupt = true;
            return None;
        }
        let crc = u32::from_le_bytes(self.buf[4..8].try_into().unwrap());
        if self.buf.len() < 8 + len {
            return None;
        }
        if crc32(&self.buf[8..8 + len]) != crc {
            self.corrupt = true;
            return None;
        }
        let payload = self.buf[8..8 + len].to_vec();
        self.buf.drain(..8 + len);
        Some(payload)
    }

    /// Whether the stream hit an unrecoverable frame (bad CRC or an
    /// absurd declared length). Once set it never clears, and no
    /// further payloads are produced.
    pub fn is_corrupt(&self) -> bool {
        self.corrupt
    }

    /// Bytes buffered but not yet consumed by a complete frame. Nonzero
    /// at EOF means the final frame was torn mid-write.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

// ---------------------------------------------------------------------------
// Primitive encoders

/// Append-only encoder for section payloads.
///
/// All writes are infallible; the buffer grows as needed. The matching
/// decoder is [`StateReader`].
#[derive(Debug, Default)]
pub struct StateWriter {
    buf: Vec<u8>,
}

impl StateWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        StateWriter { buf: Vec::new() }
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a boolean as one byte, `0` or `1`.
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends a byte string with a `u64` length prefix.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Appends a UTF-8 string with a `u64` length prefix.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the payload bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked decoder over a section payload.
///
/// Every read returns [`SnapshotError::Truncated`] when the payload
/// runs out and [`SnapshotError::Corrupt`] on invalid encodings, so a
/// loader built on this never panics on hostile input.
#[derive(Debug)]
pub struct StateReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> StateReader<'a> {
    /// Wraps a payload for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        StateReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or(SnapshotError::Truncated { context })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self, context: &'static str) -> Result<u8, SnapshotError> {
        Ok(self.take(1, context)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self, context: &'static str) -> Result<u32, SnapshotError> {
        let s = self.take(4, context)?;
        Ok(u32::from_le_bytes(s.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self, context: &'static str) -> Result<u64, SnapshotError> {
        let s = self.take(8, context)?;
        Ok(u64::from_le_bytes(s.try_into().unwrap()))
    }

    /// Reads a strict boolean: the byte must be exactly `0` or `1`.
    pub fn get_bool(&mut self, context: &'static str) -> Result<bool, SnapshotError> {
        match self.get_u8(context)? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapshotError::Corrupt {
                context: format!("{context}: invalid boolean byte 0x{b:02x}"),
            }),
        }
    }

    /// Reads a `u64`-length-prefixed byte string.
    pub fn get_bytes(&mut self, context: &'static str) -> Result<&'a [u8], SnapshotError> {
        let len = self.get_u64(context)?;
        let len = usize::try_from(len).map_err(|_| SnapshotError::Corrupt {
            context: format!("{context}: byte-string length {len} overflows usize"),
        })?;
        self.take(len, context)
    }

    /// Reads a `u64`-length-prefixed UTF-8 string.
    pub fn get_str(&mut self, context: &'static str) -> Result<&'a str, SnapshotError> {
        let bytes = self.get_bytes(context)?;
        std::str::from_utf8(bytes).map_err(|_| SnapshotError::Corrupt {
            context: format!("{context}: string is not valid UTF-8"),
        })
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Asserts the payload was fully consumed; trailing bytes mean the
    /// payload layout disagrees with the loader and are reported as
    /// corruption.
    pub fn finish(&self, context: &'static str) -> Result<(), SnapshotError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapshotError::Corrupt {
                context: format!("{context}: {} trailing bytes", self.remaining()),
            })
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshot container

/// A named-section state capture, serializable to a checksummed binary
/// stream.
///
/// Sections are kept in insertion order; names must be unique. Use
/// [`Snapshot::to_bytes`]/[`Snapshot::from_bytes`] for in-memory
/// round-trips and [`Snapshot::save`]/[`Snapshot::load`] for files.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    sections: Vec<(String, Vec<u8>)>,
}

impl Snapshot {
    /// Creates an empty snapshot.
    pub fn new() -> Self {
        Snapshot { sections: Vec::new() }
    }

    /// Appends a section. Panics in debug builds if the name repeats —
    /// section names are a writer-side contract, not input data.
    pub fn push_section(&mut self, name: impl Into<String>, payload: Vec<u8>) {
        let name = name.into();
        debug_assert!(
            self.section(&name).is_none(),
            "duplicate snapshot section `{name}`"
        );
        self.sections.push((name, payload));
    }

    /// Payload of the section named `name`, if present.
    pub fn section(&self, name: &str) -> Option<&[u8]> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, p)| p.as_slice())
    }

    /// Payload of a required section, as a typed error when absent.
    pub fn require_section(&self, name: &str) -> Result<&[u8], SnapshotError> {
        self.section(name).ok_or_else(|| SnapshotError::MissingSection {
            name: name.to_string(),
        })
    }

    /// Section names, in insertion order.
    pub fn section_names(&self) -> impl Iterator<Item = &str> {
        self.sections.iter().map(|(n, _)| n.as_str())
    }

    /// Number of sections.
    pub fn section_count(&self) -> usize {
        self.sections.len()
    }

    /// Total payload bytes across all sections (excludes framing).
    pub fn payload_bytes(&self) -> usize {
        self.sections.iter().map(|(_, p)| p.len()).sum()
    }

    /// Encodes the snapshot into the versioned, checksummed wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let framing = self
            .sections
            .iter()
            .map(|(n, p)| 16 + n.len() + p.len())
            .sum::<usize>();
        let mut out = Vec::with_capacity(12 + framing);
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for (name, payload) in &self.sections {
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&crc32(payload).to_le_bytes());
            out.extend_from_slice(payload);
        }
        out
    }

    /// Decodes a snapshot, validating magic, version, framing, and
    /// every section CRC. Any corruption or truncation yields a typed
    /// [`SnapshotError`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        let mut r = StateReader::new(bytes);
        let magic = r.take(4, "magic")?;
        if magic != SNAPSHOT_MAGIC {
            let mut found = [0u8; 4];
            found.copy_from_slice(magic);
            return Err(SnapshotError::BadMagic { found });
        }
        let version = r.get_u32("version")?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion { found: version });
        }
        let count = r.get_u32("section count")?;
        let mut sections: Vec<(String, Vec<u8>)> = Vec::new();
        for _ in 0..count {
            let name_len = r.get_u32("section name length")? as usize;
            let name = std::str::from_utf8(r.take(name_len, "section name")?)
                .map_err(|_| SnapshotError::Corrupt {
                    context: "section name is not valid UTF-8".to_string(),
                })?
                .to_string();
            let payload_len = r.get_u64("section payload length")?;
            let payload_len =
                usize::try_from(payload_len).map_err(|_| SnapshotError::Corrupt {
                    context: format!(
                        "section `{name}`: payload length {payload_len} overflows usize"
                    ),
                })?;
            let crc = r.get_u32("section checksum")?;
            let payload = r.take(payload_len, "section payload")?;
            if crc32(payload) != crc {
                return Err(SnapshotError::ChecksumMismatch { section: name });
            }
            if sections.iter().any(|(n, _)| *n == name) {
                return Err(SnapshotError::Corrupt {
                    context: format!("duplicate section `{name}`"),
                });
            }
            sections.push((name, payload.to_vec()));
        }
        r.finish("snapshot trailer")?;
        Ok(Snapshot { sections })
    }

    /// Writes the encoded snapshot to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Reads and decodes a snapshot from `path`.
    pub fn load(path: impl AsRef<Path>) -> Result<Snapshot, SnapshotError> {
        let bytes = std::fs::read(path)?;
        Snapshot::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard CRC-32 (IEEE) check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn primitives_round_trip() {
        let mut w = StateWriter::new();
        w.put_u8(0xAB);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(0x0123_4567_89AB_CDEF);
        w.put_bool(true);
        w.put_bool(false);
        w.put_bytes(&[1, 2, 3]);
        w.put_str("clk");
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        assert_eq!(r.get_u8("a").unwrap(), 0xAB);
        assert_eq!(r.get_u32("b").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64("c").unwrap(), 0x0123_4567_89AB_CDEF);
        assert!(r.get_bool("d").unwrap());
        assert!(!r.get_bool("e").unwrap());
        assert_eq!(r.get_bytes("f").unwrap(), &[1, 2, 3]);
        assert_eq!(r.get_str("g").unwrap(), "clk");
        r.finish("payload").unwrap();
    }

    #[test]
    fn reader_is_bounds_checked() {
        let mut r = StateReader::new(&[1, 2]);
        assert!(matches!(
            r.get_u32("x"),
            Err(SnapshotError::Truncated { .. })
        ));
        // A failed read consumes nothing usable; a short one still errors.
        let mut r = StateReader::new(&[2, 0, 0, 0, 0, 0, 0, 0, 9]);
        assert!(matches!(
            r.get_bytes("y"),
            Err(SnapshotError::Truncated { .. })
        ));
    }

    #[test]
    fn strict_booleans() {
        let mut r = StateReader::new(&[7]);
        assert!(matches!(r.get_bool("b"), Err(SnapshotError::Corrupt { .. })));
    }

    #[test]
    fn container_round_trip() {
        let mut s = Snapshot::new();
        s.push_section("kernel", vec![1, 2, 3, 4]);
        s.push_section("comp0", vec![]);
        s.push_section("comp1", vec![0xFF; 1000]);
        let bytes = s.to_bytes();
        let back = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back.section_count(), 3);
        assert_eq!(back.section("kernel").unwrap(), &[1, 2, 3, 4]);
        assert_eq!(back.section("comp0").unwrap(), &[] as &[u8]);
        assert_eq!(back.section("comp1").unwrap().len(), 1000);
        assert!(back.section("nope").is_none());
        assert!(matches!(
            back.require_section("nope"),
            Err(SnapshotError::MissingSection { .. })
        ));
    }

    #[test]
    fn bad_magic_and_version() {
        let mut bytes = Snapshot::new().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::BadMagic { .. })
        ));
        let mut bytes = Snapshot::new().to_bytes();
        bytes[4] = 0xEE;
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn payload_corruption_is_caught_by_crc() {
        let mut s = Snapshot::new();
        s.push_section("kernel", (0..64).collect());
        let mut bytes = s.to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::ChecksumMismatch { section }) if section == "kernel"
        ));
    }

    #[test]
    fn framed_records_round_trip_and_tolerate_torn_tails() {
        let records: [&[u8]; 3] = [b"first", b"", b"third-record"];
        let mut stream = Vec::new();
        for r in &records {
            stream.extend_from_slice(&frame_record(r));
        }

        // Full stream: every record scans back in order, then a clean end.
        let mut rest: &[u8] = &stream;
        for want in &records {
            match next_framed_record(rest) {
                FramedRecord::Complete { payload, consumed } => {
                    assert_eq!(payload, *want);
                    rest = &rest[consumed..];
                }
                other => panic!("expected record, got {other:?}"),
            }
        }
        assert_eq!(next_framed_record(rest), FramedRecord::End);

        // Every truncation point: the scan yields exactly the records
        // whose full frame survived, then Torn (or End on a record
        // boundary) — never a panic, never a bogus payload.
        let boundaries: Vec<usize> = {
            let mut b = vec![0];
            for r in &records {
                b.push(b.last().unwrap() + 8 + r.len());
            }
            b
        };
        for cut in 0..stream.len() {
            let mut rest = &stream[..cut];
            let mut scanned = 0;
            loop {
                match next_framed_record(rest) {
                    FramedRecord::Complete { consumed, .. } => {
                        rest = &rest[consumed..];
                        scanned += 1;
                    }
                    FramedRecord::Torn => break,
                    FramedRecord::End => break,
                }
            }
            let whole = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
            assert_eq!(scanned, whole, "cut at {cut}");
            let on_boundary = boundaries.contains(&cut);
            assert_eq!(
                next_framed_record(rest) == FramedRecord::End,
                on_boundary,
                "cut at {cut}"
            );
        }

        // A bit flip in a payload is caught by the CRC and reads as torn.
        let mut bad = stream.clone();
        bad[9] ^= 0x40; // inside record 0's payload
        assert_eq!(next_framed_record(&bad), FramedRecord::Torn);
        // A bogus giant length cannot over-read.
        let mut huge = frame_record(b"x");
        huge[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(next_framed_record(&huge), FramedRecord::Torn);
    }

    #[test]
    fn frame_stream_reassembles_arbitrary_chunking() {
        let records: [&[u8]; 4] = [b"alpha", b"", b"gamma-record", &[0xAB; 300]];
        let mut wire = Vec::new();
        for r in &records {
            wire.extend_from_slice(&frame_record(r));
        }

        // Feed in every fixed chunk size from a byte at a time up to the
        // whole stream: the same records must come back out, in order.
        for chunk in 1..=wire.len() {
            let mut stream = FrameStream::new();
            let mut got: Vec<Vec<u8>> = Vec::new();
            for piece in wire.chunks(chunk) {
                stream.feed(piece);
                while let Some(p) = stream.next_payload() {
                    got.push(p);
                }
            }
            assert!(!stream.is_corrupt(), "chunk size {chunk}");
            assert_eq!(stream.buffered(), 0, "chunk size {chunk}");
            assert_eq!(got.len(), records.len(), "chunk size {chunk}");
            for (g, want) in got.iter().zip(&records) {
                assert_eq!(g.as_slice(), *want, "chunk size {chunk}");
            }
        }
    }

    #[test]
    fn frame_stream_latches_on_corruption() {
        // A bit flip in the first payload poisons everything after it —
        // the intact second record must NOT be produced (no resync).
        let mut wire = frame_record(b"first");
        wire[9] ^= 0x04;
        wire.extend_from_slice(&frame_record(b"second"));
        let mut stream = FrameStream::new();
        stream.feed(&wire);
        assert_eq!(stream.next_payload(), None);
        assert!(stream.is_corrupt());
        stream.feed(&frame_record(b"third"));
        assert_eq!(stream.next_payload(), None, "corrupt latches");

        // An absurd declared length is corruption, not an allocation.
        let mut huge = frame_record(b"x");
        huge[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut stream = FrameStream::new();
        stream.feed(&huge);
        assert_eq!(stream.next_payload(), None);
        assert!(stream.is_corrupt());

        // A torn tail (EOF mid-frame) is visible as leftover bytes.
        let whole = frame_record(b"payload");
        let mut stream = FrameStream::new();
        stream.feed(&whole[..whole.len() - 2]);
        assert_eq!(stream.next_payload(), None);
        assert!(!stream.is_corrupt(), "torn != corrupt before EOF");
        assert!(stream.buffered() > 0);
    }

    #[test]
    fn every_truncation_is_typed() {
        let mut s = Snapshot::new();
        s.push_section("kernel", vec![9; 32]);
        s.push_section("comp0", vec![7; 8]);
        let bytes = s.to_bytes();
        for len in 0..bytes.len() {
            let err = Snapshot::from_bytes(&bytes[..len])
                .expect_err("truncated snapshot must not decode");
            assert!(matches!(
                err,
                SnapshotError::BadMagic { .. }
                    | SnapshotError::Truncated { .. }
                    | SnapshotError::ChecksumMismatch { .. }
            ));
        }
    }
}
