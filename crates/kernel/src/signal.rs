//! Signals: the communication fabric between components.
//!
//! A signal carries an unsigned value of 1–64 bits, like a wire bundle in
//! hardware. Signals are *double buffered*: during a delta cycle components
//! read the *current* value and write the *next* value; the kernel then
//! commits all writes at once (the SystemC evaluate→update model). A write
//! only counts as a *change* — and only wakes subscribed components — if the
//! committed value differs from the previous one.
//!
//! Values wider than the declared width are masked on write, mirroring how a
//! hardware assignment truncates to the target width.

use crate::component::ComponentId;

/// Identifier of a signal inside a [`SignalBoard`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SignalId(pub(crate) u32);

impl SignalId {
    /// Raw index form, for use in data structures.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A typed handle to a signal: its id plus its declared bit width.
///
/// `Wire` is `Copy` and is the value components store in their port structs.
///
/// # Examples
///
/// ```
/// use dmi_kernel::Simulator;
///
/// let mut sim = Simulator::new();
/// let w = sim.wire("top.addr", 32);
/// assert_eq!(w.width(), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Wire {
    pub(crate) id: SignalId,
    pub(crate) width: u8,
}

impl Wire {
    /// The signal id this wire refers to.
    #[inline]
    pub fn id(self) -> SignalId {
        self.id
    }

    /// Declared width in bits (1–64).
    #[inline]
    pub fn width(self) -> u8 {
        self.width
    }
}

/// Edge filter for signal subscriptions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Edge {
    /// 0 → 1 transition. Only meaningful for 1-bit signals.
    Rising,
    /// 1 → 0 transition. Only meaningful for 1-bit signals.
    Falling,
    /// Any change of value.
    Any,
}

impl Edge {
    /// Whether a committed transition `old → new` matches this filter.
    #[inline]
    pub fn matches(self, old: u64, new: u64) -> bool {
        match self {
            Edge::Rising => old == 0 && new == 1,
            Edge::Falling => old == 1 && new == 0,
            Edge::Any => old != new,
        }
    }
}

/// Bit set in a slot's subscriber summary when any `Rising` or `Any`
/// subscription exists (a 0→1 commit can wake someone).
const SUBS_RISING: u8 = 0b01;
/// Bit set when any `Falling` or `Any` subscription exists.
const SUBS_FALLING: u8 = 0b10;

#[derive(Debug)]
struct Slot {
    name: String,
    width: u8,
    mask: u64,
    cur: u64,
    next: u64,
    dirty: bool,
    subs: Vec<(ComponentId, Edge)>,
    /// Edge-direction summary of `subs` ([`SUBS_RISING`] /
    /// [`SUBS_FALLING`]), maintained by [`SignalBoard::subscribe`] so the
    /// simulator's clock path can prove a toggle cannot wake anyone
    /// without scanning the subscriber list.
    sub_mask: u8,
    traced: bool,
}

/// A committed signal change: `(signal, old value, new value)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Change {
    /// The signal that changed.
    pub signal: SignalId,
    /// Value before the commit.
    pub old: u64,
    /// Value after the commit.
    pub new: u64,
}

/// Storage and delta-commit machinery for all signals of a simulation.
#[derive(Debug, Default)]
pub struct SignalBoard {
    slots: Vec<Slot>,
    pending: Vec<SignalId>,
    writes_total: u64,
    commits_total: u64,
}

fn width_mask(width: u8) -> u64 {
    debug_assert!((1..=64).contains(&width));
    if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

impl SignalBoard {
    /// Creates an empty board.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a new signal and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    pub fn declare(&mut self, name: impl Into<String>, width: u8) -> Wire {
        assert!(
            (1..=64).contains(&width),
            "signal width must be 1..=64, got {width}"
        );
        let id = SignalId(self.slots.len() as u32);
        self.slots.push(Slot {
            name: name.into(),
            width,
            mask: width_mask(width),
            cur: 0,
            next: 0,
            dirty: false,
            subs: Vec::new(),
            sub_mask: 0,
            traced: false,
        });
        Wire { id, width }
    }

    /// Current (committed) value of a signal.
    #[inline]
    pub fn read(&self, wire: Wire) -> u64 {
        self.slots[wire.id.index()].cur
    }

    /// Current value interpreted as a boolean (non-zero = true).
    #[inline]
    pub fn read_bit(&self, wire: Wire) -> bool {
        self.read(wire) != 0
    }

    /// Writes the *next* value of a signal; it becomes visible after the
    /// next delta commit. The value is masked to the signal's width.
    /// The last write in a delta cycle wins.
    #[inline]
    pub fn write(&mut self, wire: Wire, value: u64) {
        let slot = &mut self.slots[wire.id.index()];
        slot.next = value & slot.mask;
        self.writes_total += 1;
        if !slot.dirty {
            slot.dirty = true;
            self.pending.push(wire.id);
        }
    }

    /// Forces the *current* value without delta semantics. Only for
    /// initialization before the simulation starts.
    pub fn poke(&mut self, wire: Wire, value: u64) {
        let slot = &mut self.slots[wire.id.index()];
        slot.cur = value & slot.mask;
        slot.next = slot.cur;
    }

    /// Subscribes a component to changes of `wire` matching `edge`.
    ///
    /// # Panics
    ///
    /// Panics if an edge filter other than [`Edge::Any`] is used on a signal
    /// wider than one bit.
    pub fn subscribe(&mut self, wire: Wire, component: ComponentId, edge: Edge) {
        let slot = &mut self.slots[wire.id.index()];
        assert!(
            edge == Edge::Any || slot.width == 1,
            "edge-filtered subscription on multi-bit signal {}",
            slot.name
        );
        slot.sub_mask |= match edge {
            Edge::Rising => SUBS_RISING,
            Edge::Falling => SUBS_FALLING,
            Edge::Any => SUBS_RISING | SUBS_FALLING,
        };
        slot.subs.push((component, edge));
    }

    /// Attempts to begin a *quiet toggle* of a 1-bit signal: a commit in
    /// the given direction that provably has no observer — no subscriber
    /// whose edge filter matches, no tracer, and no write already pending
    /// this delta. On success the write is counted (so board counters
    /// match the ordinary path) and the caller must later finish it with
    /// [`apply_quiet_toggle`](Self::apply_quiet_toggle) at the end of the
    /// delta, or park it with
    /// [`requeue_quiet_toggle`](Self::requeue_quiet_toggle) if the run
    /// breaks off mid-delta.
    #[inline]
    pub(crate) fn try_begin_quiet_toggle(&mut self, wire: Wire, rising: bool) -> bool {
        let slot = &mut self.slots[wire.id.index()];
        let watched = if rising { SUBS_RISING } else { SUBS_FALLING };
        if slot.dirty || slot.traced || slot.sub_mask & watched != 0 {
            return false;
        }
        self.writes_total += 1;
        true
    }

    /// Completes a quiet toggle at the end of its delta: flips the
    /// committed value in place, bypassing the pending list (the
    /// transition has no observer, so no [`Change`] is produced). A write
    /// issued to the same signal later in the delta wins instead —
    /// exactly the last-write-wins rule of the ordinary path, where the
    /// toggle's write came first.
    #[inline]
    pub(crate) fn apply_quiet_toggle(&mut self, wire: Wire) {
        let slot = &mut self.slots[wire.id.index()];
        if slot.dirty {
            return;
        }
        slot.cur ^= 1;
        slot.next = slot.cur;
    }

    /// Converts a still-deferred quiet toggle back into an ordinary
    /// pending write (for runs that break off before the delta's update
    /// phase): the resumed run's first commit then applies it exactly
    /// where the unspecialized path would have. Respects last-write-wins
    /// the same way as [`apply_quiet_toggle`](Self::apply_quiet_toggle);
    /// the write was already counted when the toggle began.
    pub(crate) fn requeue_quiet_toggle(&mut self, wire: Wire) {
        let slot = &mut self.slots[wire.id.index()];
        if slot.dirty {
            return;
        }
        slot.next = (slot.cur ^ 1) & slot.mask;
        slot.dirty = true;
        self.pending.push(wire.id);
    }

    /// Commits all pending writes, appending actual changes to `out`.
    ///
    /// Returns the number of signals whose value changed.
    pub fn commit(&mut self, out: &mut Vec<Change>) -> usize {
        self.commits_total += 1;
        let mut changed = 0;
        for id in self.pending.drain(..) {
            let slot = &mut self.slots[id.index()];
            slot.dirty = false;
            if slot.next != slot.cur {
                out.push(Change {
                    signal: id,
                    old: slot.cur,
                    new: slot.next,
                });
                slot.cur = slot.next;
                changed += 1;
            }
        }
        changed
    }

    /// Whether any write is pending (committed or not it may be a no-op).
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Subscribers of a signal, as `(component, edge)` pairs.
    pub fn subscribers(&self, id: SignalId) -> &[(ComponentId, Edge)] {
        &self.slots[id.index()].subs
    }

    /// The hierarchical name a signal was declared with.
    pub fn name(&self, id: SignalId) -> &str {
        &self.slots[id.index()].name
    }

    /// Declared width of a signal.
    pub fn width(&self, id: SignalId) -> u8 {
        self.slots[id.index()].width
    }

    /// Marks a signal for tracing (used by the VCD tracer).
    pub fn set_traced(&mut self, id: SignalId, traced: bool) {
        self.slots[id.index()].traced = traced;
    }

    /// Whether a signal is marked for tracing.
    pub fn is_traced(&self, id: SignalId) -> bool {
        self.slots[id.index()].traced
    }

    /// Number of declared signals.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no signals are declared.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total writes issued since construction.
    pub fn writes_total(&self) -> u64 {
        self.writes_total
    }

    /// Total delta commits performed since construction.
    pub fn commits_total(&self) -> u64 {
        self.commits_total
    }

    /// Iterates over `(id, name, width)` of all signals.
    pub fn iter_meta(&self) -> impl Iterator<Item = (SignalId, &str, u8)> {
        self.slots
            .iter()
            .enumerate()
            .map(|(i, s)| (SignalId(i as u32), s.name.as_str(), s.width))
    }

    /// Serializes the board's runtime state: per-slot committed/pending
    /// values and dirty flags, the pending-write list, and the write and
    /// commit counters. Declarations (names, widths, subscriptions,
    /// trace marks) are build-time wiring and are not serialized.
    pub(crate) fn save_state(&self, w: &mut crate::snapshot::StateWriter) {
        w.put_u32(self.slots.len() as u32);
        for slot in &self.slots {
            w.put_u64(slot.cur);
            w.put_u64(slot.next);
            w.put_bool(slot.dirty);
        }
        w.put_u32(self.pending.len() as u32);
        for id in &self.pending {
            w.put_u32(id.0);
        }
        w.put_u64(self.writes_total);
        w.put_u64(self.commits_total);
    }

    /// Restores state written by [`SignalBoard::save_state`] onto a
    /// board with the same declarations.
    pub(crate) fn load_state(
        &mut self,
        r: &mut crate::snapshot::StateReader<'_>,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        let n = r.get_u32("signal count")? as usize;
        if n != self.slots.len() {
            return Err(SnapshotError::Mismatch {
                context: format!("snapshot has {n} signals, target has {}", self.slots.len()),
            });
        }
        for slot in &mut self.slots {
            slot.cur = r.get_u64("signal value")? & slot.mask;
            slot.next = r.get_u64("signal pending value")? & slot.mask;
            slot.dirty = r.get_bool("signal dirty flag")?;
        }
        let pending = r.get_u32("pending-write count")? as usize;
        self.pending.clear();
        for _ in 0..pending {
            let raw = r.get_u32("pending signal id")?;
            if raw as usize >= self.slots.len() {
                return Err(SnapshotError::Corrupt {
                    context: format!("pending write names signal {raw} of {}", self.slots.len()),
                });
            }
            self.pending.push(SignalId(raw));
        }
        self.writes_total = r.get_u64("signal writes_total")?;
        self.commits_total = r.get_u64("signal commits_total")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_read_write_commit() {
        let mut b = SignalBoard::new();
        let w = b.declare("w", 8);
        assert_eq!(b.read(w), 0);
        b.write(w, 0x1ff); // masked to 8 bits
        assert_eq!(b.read(w), 0, "write not visible before commit");
        let mut ch = Vec::new();
        assert_eq!(b.commit(&mut ch), 1);
        assert_eq!(b.read(w), 0xff);
        assert_eq!(ch.len(), 1);
        assert_eq!(ch[0].old, 0);
        assert_eq!(ch[0].new, 0xff);
    }

    #[test]
    fn no_change_write_is_not_reported() {
        let mut b = SignalBoard::new();
        let w = b.declare("w", 4);
        b.write(w, 0);
        let mut ch = Vec::new();
        assert_eq!(b.commit(&mut ch), 0);
        assert!(ch.is_empty());
    }

    #[test]
    fn last_write_wins_within_delta() {
        let mut b = SignalBoard::new();
        let w = b.declare("w", 16);
        b.write(w, 1);
        b.write(w, 2);
        b.write(w, 3);
        let mut ch = Vec::new();
        assert_eq!(b.commit(&mut ch), 1);
        assert_eq!(b.read(w), 3);
    }

    #[test]
    fn width_64_mask_is_full() {
        let mut b = SignalBoard::new();
        let w = b.declare("wide", 64);
        b.write(w, u64::MAX);
        let mut ch = Vec::new();
        b.commit(&mut ch);
        assert_eq!(b.read(w), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "signal width")]
    fn zero_width_rejected() {
        SignalBoard::new().declare("bad", 0);
    }

    #[test]
    #[should_panic(expected = "edge-filtered")]
    fn edge_subscription_on_bus_rejected() {
        let mut b = SignalBoard::new();
        let w = b.declare("bus", 8);
        b.subscribe(w, ComponentId::from_raw(0), Edge::Rising);
    }

    #[test]
    fn edge_matching() {
        assert!(Edge::Rising.matches(0, 1));
        assert!(!Edge::Rising.matches(1, 0));
        assert!(!Edge::Rising.matches(0, 0));
        assert!(Edge::Falling.matches(1, 0));
        assert!(!Edge::Falling.matches(0, 1));
        assert!(Edge::Any.matches(3, 4));
        assert!(!Edge::Any.matches(4, 4));
    }

    #[test]
    fn poke_bypasses_delta() {
        let mut b = SignalBoard::new();
        let w = b.declare("w", 8);
        b.poke(w, 7);
        assert_eq!(b.read(w), 7);
    }

    #[test]
    fn counters() {
        let mut b = SignalBoard::new();
        let w = b.declare("w", 8);
        b.write(w, 1);
        b.write(w, 2);
        let mut ch = Vec::new();
        b.commit(&mut ch);
        assert_eq!(b.writes_total(), 2);
        assert_eq!(b.commits_total(), 1);
        assert_eq!(b.len(), 1);
        assert!(!b.is_empty());
    }
}
