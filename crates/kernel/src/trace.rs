//! Value-change tracing with VCD output.
//!
//! Signals marked for tracing record every committed change; the collected
//! trace can be written as an IEEE 1364 VCD file for inspection in any
//! waveform viewer, or compared structurally in tests.

use std::fmt::Write as _;
use std::io::{self, Write};
use std::path::Path;

use crate::signal::{SignalBoard, SignalId};
use crate::time::SimTime;

/// One recorded value change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// When the change committed.
    pub time: SimTime,
    /// Which signal changed.
    pub signal: SignalId,
    /// The committed value.
    pub value: u64,
}

/// In-memory change recorder for traced signals.
#[derive(Debug, Default)]
pub struct Tracer {
    records: Vec<TraceRecord>,
    traced: Vec<SignalId>,
}

/// Generates the short VCD identifier for signal number `n` (base-94 over
/// the printable ASCII range `!`..`~`).
fn vcd_ident(mut n: usize) -> String {
    let mut s = String::new();
    loop {
        s.push((33 + (n % 94)) as u8 as char);
        n /= 94;
        if n == 0 {
            break;
        }
        n -= 1;
    }
    s
}

impl Tracer {
    /// Creates an empty tracer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a signal for tracing. Idempotent.
    pub fn add_signal(&mut self, id: SignalId) {
        if !self.traced.contains(&id) {
            self.traced.push(id);
        }
    }

    /// Signals currently being traced.
    pub fn traced_signals(&self) -> &[SignalId] {
        &self.traced
    }

    /// Appends a change record.
    #[inline]
    pub fn record(&mut self, time: SimTime, signal: SignalId, value: u64) {
        self.records.push(TraceRecord {
            time,
            signal,
            value,
        });
    }

    /// All records in commit order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Records for one signal, in commit order.
    pub fn records_for(&self, signal: SignalId) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter().filter(move |r| r.signal == signal)
    }

    /// Discards all recorded changes (traced-signal set is kept).
    pub fn clear(&mut self) {
        self.records.clear();
    }

    /// Renders the trace as a VCD document.
    ///
    /// `board` supplies signal names and widths; `end_time` closes the file
    /// with a final timestamp so viewers show the full run extent.
    pub fn to_vcd(&self, board: &SignalBoard, end_time: SimTime) -> String {
        let mut out = String::new();
        out.push_str("$version dmi-kernel tracer $end\n");
        out.push_str("$timescale 1ns $end\n");
        out.push_str("$scope module top $end\n");
        for (i, &sid) in self.traced.iter().enumerate() {
            let ident = vcd_ident(i);
            // VCD identifiers may not contain whitespace; signal names use
            // '.' hierarchy which viewers accept inside a flat scope.
            let _ = writeln!(
                out,
                "$var wire {} {} {} $end",
                board.width(sid),
                ident,
                board.name(sid)
            );
        }
        out.push_str("$upscope $end\n$enddefinitions $end\n");

        // Identifiers indexed by raw signal id, so the record loop below
        // is a direct lookup instead of a per-record scan of the traced
        // list (multi-signal traces are compared wholesale in the
        // differential test suites).
        let mut idents: Vec<Option<String>> = vec![None; board.len()];
        for (i, &sid) in self.traced.iter().enumerate() {
            idents[sid.index()] = Some(vcd_ident(i));
        }

        // Initial values: every traced signal is 0 before the first commit.
        out.push_str("#0\n");
        for &sid in &self.traced {
            let ident = idents[sid.index()].as_deref().expect("just built");
            emit_change(&mut out, board.width(sid), 0, ident);
        }

        let mut last_time = SimTime::ZERO;
        for rec in &self.records {
            let ident = idents[rec.signal.index()]
                .as_deref()
                .expect("record for untraced signal");
            if rec.time != last_time {
                let _ = writeln!(out, "#{}", rec.time.ticks());
                last_time = rec.time;
            }
            emit_change(&mut out, board.width(rec.signal), rec.value, ident);
        }
        if end_time > last_time {
            let _ = writeln!(out, "#{}", end_time.ticks());
        }
        out
    }

    /// Writes the VCD document to a file.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating or writing the file.
    pub fn write_vcd(
        &self,
        path: impl AsRef<Path>,
        board: &SignalBoard,
        end_time: SimTime,
    ) -> io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_vcd(board, end_time).as_bytes())
    }
}

fn emit_change(out: &mut String, width: u8, value: u64, ident: &str) {
    if width == 1 {
        let _ = writeln!(out, "{}{}", value & 1, ident);
    } else {
        let _ = writeln!(out, "b{:b} {}", value, ident);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vcd_ident_is_compact_and_unique() {
        assert_eq!(vcd_ident(0), "!");
        assert_eq!(vcd_ident(93), "~");
        assert_eq!(vcd_ident(94), "!!");
        #[allow(clippy::disallowed_types)] // test-only uniqueness probe
        let mut seen = std::collections::HashSet::new();
        for n in 0..1000 {
            assert!(seen.insert(vcd_ident(n)), "duplicate ident for {n}");
        }
    }

    #[test]
    fn records_round_trip() {
        let mut board = SignalBoard::new();
        let a = board.declare("top.a", 1);
        let b = board.declare("top.b", 8);
        let mut tr = Tracer::new();
        tr.add_signal(a.id());
        tr.add_signal(b.id());
        tr.add_signal(a.id()); // idempotent
        assert_eq!(tr.traced_signals().len(), 2);

        tr.record(SimTime::from_ticks(5), a.id(), 1);
        tr.record(SimTime::from_ticks(5), b.id(), 0xAB);
        tr.record(SimTime::from_ticks(9), a.id(), 0);
        assert_eq!(tr.records().len(), 3);
        assert_eq!(tr.records_for(a.id()).count(), 2);

        let vcd = tr.to_vcd(&board, SimTime::from_ticks(20));
        assert!(vcd.contains("$var wire 1 ! top.a $end"));
        assert!(vcd.contains("$var wire 8 \" top.b $end"));
        assert!(vcd.contains("#5\n1!\nb10101011 \"\n"));
        assert!(vcd.contains("#9\n0!\n"));
        assert!(vcd.trim_end().ends_with("#20"));
    }

    #[test]
    fn clear_keeps_signal_set() {
        let mut tr = Tracer::new();
        tr.add_signal(SignalId(0));
        tr.record(SimTime::ZERO, SignalId(0), 1);
        tr.clear();
        assert!(tr.records().is_empty());
        assert_eq!(tr.traced_signals().len(), 1);
    }
}
