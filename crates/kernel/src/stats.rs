//! Kernel execution statistics.

/// Cumulative counters maintained by the kernel across all runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Events dispatched (all kinds).
    pub events: u64,
    /// Component wakes executed.
    pub wakes: u64,
    /// Delta cycles evaluated.
    pub deltas: u64,
    /// Distinct simulated time points visited.
    pub time_steps: u64,
}

impl KernelStats {
    /// Component-wise difference `self - earlier`, used to compute per-run
    /// summaries from cumulative counters.
    pub fn since(&self, earlier: &KernelStats) -> KernelStats {
        KernelStats {
            events: self.events - earlier.events,
            wakes: self.wakes - earlier.wakes,
            deltas: self.deltas - earlier.deltas,
            time_steps: self.time_steps - earlier.time_steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts_fieldwise() {
        let a = KernelStats {
            events: 10,
            wakes: 8,
            deltas: 6,
            time_steps: 4,
        };
        let b = KernelStats {
            events: 3,
            wakes: 2,
            deltas: 1,
            time_steps: 0,
        };
        let d = a.since(&b);
        assert_eq!(
            d,
            KernelStats {
                events: 7,
                wakes: 6,
                deltas: 5,
                time_steps: 4
            }
        );
    }
}
