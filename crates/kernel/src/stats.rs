//! Kernel execution statistics.

/// Cumulative counters maintained by the kernel across all runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Events dispatched (all kinds).
    pub events: u64,
    /// Component wakes executed.
    pub wakes: u64,
    /// Delta cycles evaluated.
    pub deltas: u64,
    /// Distinct simulated time points visited.
    pub time_steps: u64,
}

impl KernelStats {
    /// Component-wise difference `self - earlier`, used to compute per-run
    /// summaries from cumulative counters.
    pub fn since(&self, earlier: &KernelStats) -> KernelStats {
        KernelStats {
            events: self.events - earlier.events,
            wakes: self.wakes - earlier.wakes,
            deltas: self.deltas - earlier.deltas,
            time_steps: self.time_steps - earlier.time_steps,
        }
    }
}

/// Counters for the kernel's clocked fast paths, kept **outside**
/// [`KernelStats`] on purpose: `KernelStats` is part of the simulation's
/// bit-identity contract (specialization on/off, calendar on/off, heap
/// vs wheel must all report the same values), while these counters
/// *describe which path served each toggle* and therefore differ by
/// construction between the reference and fast configurations. They are
/// pure observability — experiments assert fast-path coverage with
/// them, they never feed back into the simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FastPathStats {
    /// Clock toggles dispatched, over all paths (queued + calendar).
    /// Identical across configurations — the denominator of every
    /// coverage ratio.
    pub clock_toggles: u64,
    /// Toggles whose resulting edge provably had no observer and were
    /// applied as a quiet in-place flip (no commit scan, no wake pass).
    pub quiet_toggles: u64,
    /// Toggles dispatched from the per-clock calendar instead of the
    /// event queue (no queue push/pop per half-period).
    pub calendar_toggles: u64,
}

impl FastPathStats {
    /// Component-wise difference `self - earlier` (per-run deltas from
    /// cumulative counters, like [`KernelStats::since`]).
    pub fn since(&self, earlier: &FastPathStats) -> FastPathStats {
        FastPathStats {
            clock_toggles: self.clock_toggles - earlier.clock_toggles,
            quiet_toggles: self.quiet_toggles - earlier.quiet_toggles,
            calendar_toggles: self.calendar_toggles - earlier.calendar_toggles,
        }
    }

    /// Fraction of dispatched toggles the calendar served (1.0 when no
    /// toggle was dispatched at all, so coverage assertions hold
    /// vacuously on idle runs).
    pub fn calendar_coverage(&self) -> f64 {
        if self.clock_toggles == 0 {
            1.0
        } else {
            self.calendar_toggles as f64 / self.clock_toggles as f64
        }
    }

    /// Fraction of dispatched toggles that were quiet in-place flips.
    pub fn quiet_coverage(&self) -> f64 {
        if self.clock_toggles == 0 {
            1.0
        } else {
            self.quiet_toggles as f64 / self.clock_toggles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_path_since_and_coverage() {
        let a = FastPathStats {
            clock_toggles: 100,
            quiet_toggles: 50,
            calendar_toggles: 99,
        };
        let b = FastPathStats {
            clock_toggles: 10,
            quiet_toggles: 5,
            calendar_toggles: 9,
        };
        let d = a.since(&b);
        assert_eq!(d.clock_toggles, 90);
        assert_eq!(d.quiet_toggles, 45);
        assert_eq!(d.calendar_toggles, 90);
        assert!((a.calendar_coverage() - 0.99).abs() < 1e-9);
        assert!((a.quiet_coverage() - 0.5).abs() < 1e-9);
        assert_eq!(FastPathStats::default().calendar_coverage(), 1.0);
    }

    #[test]
    fn since_subtracts_fieldwise() {
        let a = KernelStats {
            events: 10,
            wakes: 8,
            deltas: 6,
            time_steps: 4,
        };
        let b = KernelStats {
            events: 3,
            wakes: 2,
            deltas: 1,
            time_steps: 0,
        };
        let d = a.since(&b);
        assert_eq!(
            d,
            KernelStats {
                events: 7,
                wakes: 6,
                deltas: 5,
                time_steps: 4
            }
        );
    }
}
