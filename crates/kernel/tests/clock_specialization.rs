//! Differential tests for the kernel's clocked-path specialization, the
//! clock calendar and the runtime queue selection.
//!
//! The fast paths (edge-summary quiet toggles + batched dispatch behind
//! `Simulator::set_clock_specialization` / `DMI_KERNEL_SPECIALIZE`, and
//! the per-clock toggle calendar behind `Simulator::set_clock_calendar`
//! / `DMI_CLOCK_CALENDAR`) must be **bit-identical** to their queued /
//! unspecialized reference paths: same wake sequences (order, times,
//! deltas, causes), same observed signal values, same [`KernelStats`],
//! same traces — under randomized multi-clock (co-prime period)
//! subscribe topologies, timer interleavings and event-budget
//! interruptions. The same harness pins the binary-heap and time-wheel
//! run loops identical.

use std::any::Any;

use dmi_kernel::{
    Component, Ctx, Edge, KernelStats, QueueKind, RunLimit, SimTime, Simulator, Wake, Wire,
    QUEUE_AUTO_WHEEL_COMPONENTS,
};
use proptest::prelude::*;

/// A probe component: logs every wake (time, delta, cause, the values of
/// all watched wires — including clock wires, which is what makes the
/// deferred quiet-toggle semantics observable), optionally drives an
/// output and optionally keeps a timer chain running.
struct Probe {
    watched: Vec<Wire>,
    out: Option<Wire>,
    timer_period: Option<u64>,
    counter: u64,
    log: Vec<WakeRecord>,
}

impl Component for Probe {
    fn name(&self) -> &str {
        "probe"
    }
    fn wake(&mut self, ctx: &mut Ctx<'_>) {
        let cause = match ctx.cause() {
            Wake::Start => 0,
            Wake::Timer(tag) => 1_000 + tag,
            Wake::Signal(sid) => 1_000_000 + sid.index() as u64,
        };
        let vals = self.watched.iter().map(|w| ctx.read(*w)).collect();
        self.log.push((ctx.time().ticks(), ctx.delta(), cause, vals));
        self.counter += 1;
        if let Some(out) = self.out {
            ctx.write(out, self.counter);
        }
        if matches!(ctx.cause(), Wake::Start | Wake::Timer(_)) {
            if let Some(p) = self.timer_period {
                ctx.schedule_in(p, 1);
            }
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// One randomized component description.
#[derive(Debug, Clone)]
struct CompCfg {
    /// Clock index to subscribe to, and the edge filter.
    clock: usize,
    edge: usize, // 0 = Rising, 1 = Falling, 2 = Any
    /// Also subscribe to the previous component's output wire.
    chain: bool,
    /// Drive an output wire.
    drives: bool,
    /// Timer period (0 = none); odd values land between clock edges,
    /// even values exactly on toggle ticks — the interleaving the
    /// deferred-toggle semantics must survive.
    timer: u64,
}

#[derive(Debug, Clone)]
struct Topology {
    clock_periods: Vec<u64>,
    comps: Vec<CompCfg>,
    trace_clock0: bool,
    ticks: u64,
    /// Event budget per run slice (0 = single unbounded run). Small
    /// budgets force the run to break off mid-delta and resume, which
    /// exercises the quiet-toggle parking and wake-requeue paths.
    budget: u64,
}

fn topology_strategy() -> impl Strategy<Value = Topology> {
    let comp = (0usize..4, 0usize..3, any::<bool>(), any::<bool>(), 0u64..7).prop_map(
        |(clock, edge, chain, drives, timer)| CompCfg {
            clock,
            edge,
            chain,
            drives,
            timer,
        },
    );
    (
        // Half-periods 1, 2, 3, 5, 7, 11: mostly pairwise co-prime, so
        // multi-clock draws produce long non-repeating edge
        // interleavings — where calendar-vs-queue tie-break divergence
        // would be most visible if the virtual sequence numbers were
        // wrong.
        prop::collection::vec(
            prop_oneof![Just(2u64), Just(4), Just(6), Just(10), Just(14), Just(22)],
            1..5,
        ),
        prop::collection::vec(comp, 1..6),
        any::<bool>(),
        20u64..300,
        prop_oneof![Just(0u64), 1u64..40],
    )
        .prop_map(|(clock_periods, comps, trace_clock0, ticks, budget)| Topology {
            clock_periods,
            comps,
            trace_clock0,
            ticks,
            budget,
        })
}

/// One logged wake: `(time, delta, cause code, watched values)`.
type WakeRecord = (u64, u32, u64, Vec<u64>);

/// Everything a run observably produced.
#[derive(Debug, PartialEq)]
struct Observed {
    logs: Vec<Vec<WakeRecord>>,
    stats: KernelStats,
    /// Total dispatched clock toggles — part of the identity contract
    /// (unlike the per-path quiet/calendar counters, which describe
    /// which fast path served each toggle and differ by configuration).
    clock_toggles: u64,
    writes_total: u64,
    end_time: u64,
    finals: Vec<u64>,
    vcd: String,
}

fn run_topology(top: &Topology, specialize: bool, calendar: bool, queue: QueueKind) -> Observed {
    let mut sim = Simulator::new();
    sim.set_clock_specialization(specialize);
    sim.set_clock_calendar(calendar);
    sim.set_queue_kind(queue);
    let clocks: Vec<Wire> = top
        .clock_periods
        .iter()
        .enumerate()
        .map(|(i, &p)| sim.add_clock(format!("clk{i}"), p))
        .collect();
    if top.trace_clock0 {
        sim.trace(clocks[0]);
    }
    let mut prev_out: Option<Wire> = None;
    let mut ids = Vec::new();
    let mut wires = clocks.clone();
    for (i, c) in top.comps.iter().enumerate() {
        let out = c
            .drives
            .then(|| sim.wire(format!("out{i}"), 32));
        let mut watched = clocks.clone();
        if let Some(p) = prev_out {
            watched.push(p);
        }
        let id = sim.add_component(Box::new(Probe {
            watched,
            out,
            timer_period: (c.timer > 0).then_some(c.timer),
            counter: 0,
            log: Vec::new(),
        }));
        let clk = clocks[c.clock % clocks.len()];
        let edge = [Edge::Rising, Edge::Falling, Edge::Any][c.edge];
        sim.subscribe(id, clk, edge);
        if c.chain {
            if let Some(p) = prev_out {
                sim.subscribe(id, p, Edge::Any);
            }
        }
        if let Some(o) = out {
            wires.push(o);
            prev_out = Some(o);
        }
        ids.push(id);
    }

    if top.budget == 0 {
        sim.run_for(top.ticks);
    } else {
        // Sliced execution: keep resuming past event-budget stops until
        // the deadline is reached (bounded by a generous iteration cap).
        let deadline = SimTime::from_ticks(top.ticks);
        let mut guard = 0;
        loop {
            let s = sim.run(RunLimit::until(deadline).with_max_events(top.budget));
            guard += 1;
            assert!(guard < 100_000, "budget slices never converged");
            match s.stop {
                Some(r) if r.message().contains("event budget") => continue,
                _ => break,
            }
        }
    }

    // Calendar toggles never take a queue slot: coverage is total
    // whenever the calendar is on, zero otherwise.
    let fast = sim.fast_path_stats();
    if calendar {
        assert_eq!(fast.calendar_toggles, fast.clock_toggles);
    } else {
        assert_eq!(fast.calendar_toggles, 0);
    }

    Observed {
        logs: ids
            .iter()
            .map(|&id| sim.component::<Probe>(id).unwrap().log.clone())
            .collect(),
        stats: sim.stats(),
        clock_toggles: fast.clock_toggles,
        writes_total: sim.signals().writes_total(),
        end_time: sim.time().ticks(),
        finals: wires.iter().map(|&w| sim.peek(w)).collect(),
        vcd: sim.tracer().to_vcd(sim.signals(), sim.time()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Specialized and reference clocked paths are bit-identical on
    /// randomized topologies, including sliced budget-interrupted runs.
    #[test]
    fn specialization_is_bit_identical(top in topology_strategy()) {
        let fast = run_topology(&top, true, true, QueueKind::Heap);
        let reference = run_topology(&top, false, true, QueueKind::Heap);
        prop_assert_eq!(&fast, &reference);
    }

    /// The clock calendar executes the same simulation as the queued
    /// toggle path, on randomized multi-clock topologies (co-prime
    /// periods → dense same-tick ties between clocks and timers).
    #[test]
    fn calendar_is_bit_identical(top in topology_strategy()) {
        let calendar = run_topology(&top, true, true, QueueKind::Heap);
        let queued = run_topology(&top, true, false, QueueKind::Heap);
        prop_assert_eq!(&calendar, &queued);
    }

    /// The calendar is independent of the clocked-path specialization:
    /// it must also match with the reference commit/dispatch path.
    #[test]
    fn calendar_is_bit_identical_unspecialized(top in topology_strategy()) {
        let calendar = run_topology(&top, false, true, QueueKind::Heap);
        let queued = run_topology(&top, false, false, QueueKind::Heap);
        prop_assert_eq!(&calendar, &queued);
    }

    /// The heap and wheel run loops execute the same simulation —
    /// crossed against the calendar dimension, so all four
    /// (queue × toggle-path) corners collapse to one behaviour.
    #[test]
    fn queue_kinds_are_bit_identical(top in topology_strategy()) {
        let heap = run_topology(&top, true, true, QueueKind::Heap);
        let wheel = run_topology(&top, true, true, QueueKind::Wheel);
        prop_assert_eq!(&heap, &wheel);
        let wheel_queued = run_topology(&top, true, false, QueueKind::Wheel);
        prop_assert_eq!(&heap, &wheel_queued);
    }

    /// Event-budget slicing is replay-exact: resuming past budget stops
    /// reproduces exactly the simulation one unbounded run performs —
    /// same wake sequences, signal values, traces and counters. (Only
    /// `time_steps` may differ: a resumed run re-visits the time point
    /// it was interrupted at.) The whole-run reference executes with
    /// the calendar *off*, so slice boundaries that land between a
    /// calendar toggle's dispatch and its commit are checked against
    /// the queued implementation, not just against the calendar itself.
    #[test]
    fn budget_slicing_is_replay_exact(
        top in topology_strategy().prop_filter("sliced", |t| t.budget > 0)
    ) {
        let sliced = run_topology(&top, true, true, QueueKind::Heap);
        let whole =
            run_topology(&Topology { budget: 0, ..top.clone() }, true, false, QueueKind::Heap);
        prop_assert_eq!(&sliced.logs, &whole.logs);
        prop_assert_eq!(&sliced.finals, &whole.finals);
        prop_assert_eq!(&sliced.vcd, &whole.vcd);
        prop_assert_eq!(sliced.end_time, whole.end_time);
        prop_assert_eq!(sliced.writes_total, whole.writes_total);
        prop_assert_eq!(sliced.clock_toggles, whole.clock_toggles);
        prop_assert_eq!(sliced.stats.events, whole.stats.events);
        prop_assert_eq!(sliced.stats.wakes, whole.stats.wakes);
        prop_assert_eq!(sliced.stats.deltas, whole.stats.deltas);
    }
}

/// Counts rising edges of a wire (shared by the directed tests below).
struct EdgeCounter {
    clk: Wire,
    edges: u64,
}
impl Component for EdgeCounter {
    fn name(&self) -> &str {
        "edge_counter"
    }
    fn wake(&mut self, ctx: &mut Ctx<'_>) {
        if ctx.is_signal(self.clk) {
            self.edges += 1;
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn rising_only_sim(specialize: bool) -> (Simulator, dmi_kernel::ComponentId) {
    let mut sim = Simulator::new();
    sim.set_clock_specialization(specialize);
    let clk = sim.add_clock("clk", 10);
    let id = sim.add_component(Box::new(EdgeCounter { clk, edges: 0 }));
    sim.subscribe(id, clk, Edge::Rising);
    (sim, id)
}

/// With only Rising subscribers, every falling toggle takes the quiet
/// fast path — and the observable simulation is unchanged.
#[test]
fn falling_edges_take_the_quiet_path() {
    let (mut sim, id) = rising_only_sim(true);
    sim.run_for(100);
    assert_eq!(sim.component::<EdgeCounter>(id).unwrap().edges, 10);
    // Rising edges at 10, 20, ..., falling at 15, 25, ...: 9 falling
    // toggles inside 100 ticks, all quiet.
    assert_eq!(sim.quiet_toggles(), 9);
    assert_eq!(sim.fast_path_stats().clock_toggles, 19);

    let (mut reference, rid) = rising_only_sim(false);
    reference.run_for(100);
    assert_eq!(reference.quiet_toggles(), 0);
    assert_eq!(
        reference.component::<EdgeCounter>(rid).unwrap().edges,
        10
    );
    assert_eq!(reference.stats(), sim.stats(), "KernelStats must match");
    assert_eq!(
        reference.signals().writes_total(),
        sim.signals().writes_total()
    );
}

/// A traced clock never takes the quiet path (the tracer must see every
/// transition).
#[test]
fn traced_clock_stays_on_the_slow_path() {
    let mut sim = Simulator::new();
    sim.set_clock_specialization(true);
    let clk = sim.add_clock("clk", 10);
    let id = sim.add_component(Box::new(EdgeCounter { clk, edges: 0 }));
    sim.subscribe(id, clk, Edge::Rising);
    sim.trace(clk);
    sim.run_for(100);
    assert_eq!(sim.quiet_toggles(), 0, "traced clocks are never quiet");
    assert_eq!(sim.tracer().records().len(), 19, "all 19 edges recorded");
    let _ = sim.component::<EdgeCounter>(id);
}

/// Queue auto-selection: small systems pin the heap, systems at or above
/// the component threshold pin the wheel, and the `wheel-queue` feature
/// forces the wheel everywhere.
#[test]
fn queue_auto_selection_follows_the_size_hint() {
    let (mut small, _) = rising_only_sim(true);
    small.run_for(10);
    if cfg!(feature = "wheel-queue") {
        assert_eq!(small.queue_kind(), QueueKind::Wheel, "feature forces the wheel");
    } else {
        assert_eq!(small.queue_kind(), QueueKind::Heap);
    }

    let mut big = Simulator::new();
    let clk = big.add_clock("clk", 10);
    for _ in 0..QUEUE_AUTO_WHEEL_COMPONENTS {
        let id = big.add_component(Box::new(EdgeCounter { clk, edges: 0 }));
        big.subscribe(id, clk, Edge::Rising);
    }
    big.run_for(10);
    assert_eq!(big.queue_kind(), QueueKind::Wheel);
}

/// With the calendar on (the default), every periodic toggle dispatches
/// from the per-clock slot — none round-trips through the event queue —
/// and the simulation is unchanged.
#[test]
fn calendar_keeps_toggles_out_of_the_queue() {
    let (mut sim, id) = rising_only_sim(true);
    // (`DMI_CLOCK_CALENDAR=0` runs this suite too — pin the path
    // explicitly instead of relying on the environment default.)
    sim.set_clock_calendar(true);
    sim.run_for(100);
    assert_eq!(sim.component::<EdgeCounter>(id).unwrap().edges, 10);
    let fast = sim.fast_path_stats();
    // Toggles at 10, 15, ..., 100: 19 in total, all from the calendar.
    assert_eq!(fast.clock_toggles, 19);
    assert_eq!(fast.calendar_toggles, 19);
    assert_eq!(fast.calendar_coverage(), 1.0);

    let (mut queued, qid) = rising_only_sim(true);
    queued.set_clock_calendar(false);
    queued.run_for(100);
    assert_eq!(queued.calendar_toggles(), 0);
    assert_eq!(queued.fast_path_stats().clock_toggles, 19);
    assert_eq!(queued.component::<EdgeCounter>(qid).unwrap().edges, 10);
    assert_eq!(queued.stats(), sim.stats(), "KernelStats must match");
    assert_eq!(
        queued.signals().writes_total(),
        sim.signals().writes_total()
    );
}

/// Budget slices that cut between a calendar toggle's dispatch and its
/// commit (single-event slices hit every such boundary) leave the
/// deferred quiet flip parked and the next slot armed; resuming replays
/// the queued implementation's simulation exactly — the calendar mirror
/// of PR 4's parked quiet-toggle tests.
#[test]
fn single_event_slices_resume_calendar_toggles_exactly() {
    let run_sliced = |calendar: bool, max_events: u64| {
        let (mut sim, id) = rising_only_sim(true);
        sim.set_clock_calendar(calendar);
        let deadline = SimTime::from_ticks(100);
        let mut guard = 0;
        loop {
            let s = sim.run(RunLimit::until(deadline).with_max_events(max_events));
            guard += 1;
            assert!(guard < 10_000, "slices never converged");
            match s.stop {
                Some(r) if r.message().contains("event budget") => continue,
                _ => break,
            }
        }
        (
            sim.component::<EdgeCounter>(id).unwrap().edges,
            sim.stats().events,
            sim.stats().wakes,
            sim.stats().deltas,
            sim.signals().writes_total(),
            sim.peek(sim.component::<EdgeCounter>(id).unwrap().clk),
            sim.fast_path_stats().clock_toggles,
        )
    };
    // The reference is one unbounded run on the *queued* toggle path:
    // every sliced calendar run must land on exactly its simulation.
    let reference = run_sliced(false, u64::MAX);
    assert_eq!(run_sliced(true, u64::MAX), reference);
    for max_events in [1, 2, 3, 7] {
        assert_eq!(run_sliced(true, max_events), reference, "slice {max_events}");
    }
}

/// Switching the calendar on/off between runs migrates pending toggles
/// with their original `(time, seq)` keys — the simulation cannot tell.
#[test]
fn mid_run_calendar_migration_is_seamless() {
    let run_with_switch = |start_on: bool, switch_at: Option<u64>| {
        let (mut sim, id) = rising_only_sim(true);
        sim.set_clock_calendar(start_on);
        if let Some(at) = switch_at {
            sim.run_for(at);
            sim.set_clock_calendar(!start_on);
            sim.run_for(200 - at);
        } else {
            sim.run_for(200);
        }
        (
            sim.component::<EdgeCounter>(id).unwrap().edges,
            sim.stats(),
            sim.signals().writes_total(),
            sim.time().ticks(),
        )
    };
    let straight = run_with_switch(true, None);
    assert_eq!(run_with_switch(false, None), straight);
    for at in [1, 12, 55, 100, 199] {
        assert_eq!(run_with_switch(true, Some(at)), straight, "on→off at {at}");
        assert_eq!(run_with_switch(false, Some(at)), straight, "off→on at {at}");
    }
}

/// Directed co-prime multi-clock check: three clocks whose edges only
/// re-align every 210 ticks, subscribers on each — calendar and queued
/// dispatch must interleave the clocks identically.
#[test]
fn coprime_clocks_interleave_identically() {
    let run = |calendar: bool| {
        let mut sim = Simulator::new();
        sim.set_clock_calendar(calendar);
        let mut ids = Vec::new();
        for (name, period) in [("clk_a", 6u64), ("clk_b", 10), ("clk_c", 14)] {
            let clk = sim.add_clock(name, period);
            let id = sim.add_component(Box::new(EdgeCounter { clk, edges: 0 }));
            sim.subscribe(id, clk, Edge::Rising);
            ids.push((id, clk));
        }
        sim.run_for(420);
        let edges: Vec<u64> = ids
            .iter()
            .map(|&(id, _)| sim.component::<EdgeCounter>(id).unwrap().edges)
            .collect();
        let finals: Vec<u64> = ids.iter().map(|&(_, clk)| sim.peek(clk)).collect();
        (edges, finals, sim.stats(), sim.fast_path_stats().clock_toggles)
    };
    let (edges, finals, stats, toggles) = run(true);
    assert_eq!(edges, vec![70, 42, 30]);
    assert_eq!(run(false), (edges, finals, stats, toggles));
}

/// Switching the queue implementation mid-run migrates pending events
/// without disturbing the simulation.
#[test]
fn mid_run_queue_migration_is_seamless() {
    let run_with_switch = |switch_at: Option<u64>| {
        let (mut sim, id) = rising_only_sim(true);
        sim.set_queue_kind(QueueKind::Heap);
        if let Some(at) = switch_at {
            sim.run_for(at);
            sim.set_queue_kind(QueueKind::Wheel);
            assert_eq!(sim.queue_kind(), QueueKind::Wheel);
            sim.run_for(200 - at);
        } else {
            sim.run_for(200);
        }
        (
            sim.component::<EdgeCounter>(id).unwrap().edges,
            sim.stats(),
            sim.time().ticks(),
        )
    };
    let straight = run_with_switch(None);
    for at in [1, 55, 100, 199] {
        assert_eq!(run_with_switch(Some(at)), straight, "switch at {at}");
    }
}
