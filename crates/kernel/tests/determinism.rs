//! Property tests: simulations are bit-reproducible and delta semantics
//! hold under randomized component networks.

use std::any::Any;

use dmi_kernel::{Component, Ctx, Edge, Simulator, Wire};
use proptest::prelude::*;

/// A clocked component that applies a small PRNG-driven mutation to a bus
/// every cycle and remembers everything it observed.
struct Scrambler {
    clk: Wire,
    input: Wire,
    output: Wire,
    state: u64,
    observed: Vec<u64>,
}

impl Component for Scrambler {
    fn name(&self) -> &str {
        "scrambler"
    }
    fn wake(&mut self, ctx: &mut Ctx<'_>) {
        if ctx.is_signal(self.clk) {
            let v = ctx.read(self.input);
            self.observed.push(v);
            // xorshift-style scramble; deterministic given inputs.
            self.state ^= v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            self.state ^= self.state << 13;
            self.state ^= self.state >> 7;
            ctx.write(self.output, self.state);
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Builds a ring of `n` scramblers over `n` buses and runs for `ticks`.
/// Returns the concatenated observation log and final bus values.
fn run_ring(n: usize, seeds: &[u64], ticks: u64) -> (Vec<u64>, Vec<u64>) {
    let mut sim = Simulator::new();
    let clk = sim.add_clock("clk", 10);
    let buses: Vec<Wire> = (0..n)
        .map(|i| sim.wire(format!("bus{i}"), 64))
        .collect();
    let mut ids = Vec::new();
    for i in 0..n {
        let id = sim.add_component(Box::new(Scrambler {
            clk,
            input: buses[i],
            output: buses[(i + 1) % n],
            state: seeds[i],
            observed: Vec::new(),
        }));
        sim.subscribe(id, clk, Edge::Rising);
        ids.push(id);
    }
    sim.run_for(ticks);
    let mut log = Vec::new();
    for &id in &ids {
        let s: &Scrambler = sim.component(id).unwrap();
        log.extend_from_slice(&s.observed);
        log.push(s.state);
    }
    let finals = buses.iter().map(|&b| sim.peek(b)).collect();
    (log, finals)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Two identical runs produce identical observation logs and signal
    /// values — the kernel is deterministic.
    #[test]
    fn ring_simulation_is_deterministic(
        n in 1usize..8,
        seeds in prop::collection::vec(any::<u64>(), 8),
        ticks in 1u64..400,
    ) {
        let a = run_ring(n, &seeds, ticks);
        let b = run_ring(n, &seeds, ticks);
        prop_assert_eq!(a, b);
    }

    /// A single scrambler observing its own output sees each value exactly
    /// one cycle late (flip-flop semantics), regardless of parameters.
    #[test]
    fn self_loop_is_one_cycle_delayed(seed in any::<u64>(), cycles in 1u64..200) {
        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", 2);
        let bus = sim.wire("bus", 64);
        let id = sim.add_component(Box::new(Scrambler {
            clk,
            input: bus,
            output: bus,
            state: seed,
            observed: Vec::new(),
        }));
        sim.subscribe(id, clk, Edge::Rising);
        sim.run_for(cycles * 2);
        let s: &Scrambler = sim.component(id).unwrap();
        prop_assert_eq!(s.observed.len() as u64, cycles);
        // First observation is the reset value of the bus.
        prop_assert_eq!(s.observed[0], 0);
        // Each later observation equals the value committed one cycle prior;
        // recompute the expected chain.
        let mut state = seed;
        for i in 1..s.observed.len() {
            let v = s.observed[i - 1];
            state ^= v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            state ^= state << 13;
            state ^= state >> 7;
            prop_assert_eq!(s.observed[i], state);
        }
    }
}

#[test]
fn trace_is_reproducible() {
    let mk = || {
        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", 10);
        let bus = sim.wire("bus", 64);
        let id = sim.add_component(Box::new(Scrambler {
            clk,
            input: bus,
            output: bus,
            state: 42,
            observed: Vec::new(),
        }));
        sim.subscribe(id, clk, Edge::Rising);
        sim.trace(clk);
        sim.trace(bus);
        sim.run_for(500);
        sim.tracer().to_vcd(sim.signals(), sim.time())
    };
    assert_eq!(mk(), mk());
}
