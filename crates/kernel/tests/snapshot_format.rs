//! Snapshot robustness, kernel level: save/restore round-trips replay
//! bit-identically across queue kinds and calendar placements, and every
//! flavour of corrupt input — truncation, bit flips, wrong magic, wrong
//! version — comes back as a typed [`SnapshotError`], never a panic.

use std::any::Any;

use dmi_kernel::{
    Component, Ctx, Edge, QueueKind, Simulator, Snapshot, SnapshotError, StateReader, StateWriter,
    Wire, SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
use proptest::prelude::*;

/// A clocked PRNG component with full state-capture hooks: scrambles its
/// state from the input bus every rising edge and logs what it saw.
struct Lfsr {
    name: String,
    clk: Wire,
    input: Wire,
    output: Wire,
    state: u64,
    observed: Vec<u64>,
}

impl Component for Lfsr {
    fn name(&self) -> &str {
        &self.name
    }

    fn wake(&mut self, ctx: &mut Ctx<'_>) {
        if ctx.is_signal(self.clk) {
            let v = ctx.read(self.input);
            self.observed.push(v);
            self.state ^= v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            self.state ^= self.state << 13;
            self.state ^= self.state >> 7;
            ctx.write(self.output, self.state);
        }
    }

    fn save_state(&self, w: &mut StateWriter) {
        w.put_u64(self.state);
        w.put_u64(self.observed.len() as u64);
        for v in &self.observed {
            w.put_u64(*v);
        }
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.state = r.get_u64("lfsr state")?;
        let n = r.get_u64("lfsr log length")?;
        self.observed.clear();
        for _ in 0..n {
            self.observed.push(r.get_u64("lfsr log entry")?);
        }
        Ok(())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Builds a ring of `n` LFSRs on `n` buses under the given kernel knobs.
fn build_ring(
    n: usize,
    queue: QueueKind,
    calendar: bool,
) -> (Simulator, Vec<dmi_kernel::ComponentId>, Vec<Wire>) {
    let mut sim = Simulator::new();
    sim.set_queue_kind(queue);
    sim.set_clock_calendar(calendar);
    let clk = sim.add_clock("clk", 10);
    let buses: Vec<Wire> = (0..n).map(|i| sim.wire(format!("bus{i}"), 64)).collect();
    let mut ids = Vec::new();
    for i in 0..n {
        let id = sim.add_component(Box::new(Lfsr {
            name: format!("lfsr{i}"),
            clk,
            input: buses[i],
            output: buses[(i + 1) % n],
            state: 0x1234_5678_9ABC_DEF0 ^ (i as u64),
            observed: Vec::new(),
        }));
        sim.subscribe(id, clk, Edge::Rising);
        ids.push(id);
    }
    (sim, ids, buses)
}

/// Serializes a simulator into the kernel + per-component sections.
fn capture(sim: &mut Simulator) -> Snapshot {
    let mut snap = Snapshot::new();
    let mut w = StateWriter::new();
    sim.save_state(&mut w);
    snap.push_section("kernel", w.into_bytes());
    for i in 0..sim.component_count() {
        let mut w = StateWriter::new();
        sim.save_component_state(i, &mut w);
        snap.push_section(format!("comp{i}"), w.into_bytes());
    }
    snap
}

/// Restores a capture made by [`capture`].
fn apply(sim: &mut Simulator, snap: &Snapshot) -> Result<(), SnapshotError> {
    let mut r = StateReader::new(snap.require_section("kernel")?);
    sim.load_state(&mut r)?;
    r.finish("kernel")?;
    for i in 0..sim.component_count() {
        let mut r = StateReader::new(snap.require_section(&format!("comp{i}"))?);
        sim.load_component_state(i, &mut r)?;
    }
    Ok(())
}

/// Full observable state of a ring: per-component logs + PRNG states,
/// bus values, simulated time, kernel event/wake counters.
fn observe(sim: &Simulator, ids: &[dmi_kernel::ComponentId], buses: &[Wire]) -> Vec<u64> {
    let mut out = Vec::new();
    for &id in ids {
        let l: &Lfsr = sim.component(id).unwrap();
        out.push(l.state);
        out.extend_from_slice(&l.observed);
    }
    out.extend(buses.iter().map(|&b| sim.peek(b)));
    out.push(sim.time().ticks());
    let s = sim.stats();
    out.extend([s.events, s.wakes, s.deltas, s.time_steps]);
    out
}

#[test]
fn restored_ring_replays_bit_identically_across_kernel_twins() {
    // Save on one (queue, calendar) twin, restore on every other: the
    // continuation must match the uninterrupted run exactly — the
    // snapshot carries the schedule, not the substrate executing it.
    let configs = [
        (QueueKind::Heap, true),
        (QueueKind::Heap, false),
        (QueueKind::Wheel, true),
        (QueueKind::Wheel, false),
    ];
    for &(src_q, src_cal) in &configs {
        let (mut cont, cont_ids, cont_buses) = build_ring(5, src_q, src_cal);
        cont.run_for(333);
        let snap = capture(&mut cont);
        // Saving must not disturb the source: keep running it as the
        // continuous reference.
        cont.run_for(444);
        let reference = observe(&cont, &cont_ids, &cont_buses);

        for &(dst_q, dst_cal) in &configs {
            let (mut restored, ids, buses) = build_ring(5, dst_q, dst_cal);
            apply(&mut restored, &snap).expect("restore onto twin");
            restored.run_for(444);
            assert_eq!(
                observe(&restored, &ids, &buses),
                reference,
                "restore {src_q:?}/cal={src_cal} -> {dst_q:?}/cal={dst_cal} diverged"
            );
        }
    }
}

#[test]
fn snapshot_round_trips_through_bytes_and_disk() {
    let (mut sim, _, _) = build_ring(3, QueueKind::Heap, true);
    sim.run_for(100);
    let snap = capture(&mut sim);
    let bytes = snap.to_bytes();
    let back = Snapshot::from_bytes(&bytes).expect("clean bytes parse");
    assert_eq!(back.section_names().count(), snap.section_names().count());
    for name in snap.section_names() {
        assert_eq!(back.section(name), snap.section(name), "section {name}");
    }

    let dir = std::env::temp_dir().join("dmi_snapshot_format_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("ring.dmisnap");
    snap.save(&path).expect("save to disk");
    let from_disk = Snapshot::load(&path).expect("load from disk");
    assert_eq!(from_disk.to_bytes(), bytes);
    std::fs::remove_file(&path).ok();
}

/// A real mid-run capture to corrupt (deterministic content).
fn victim_bytes() -> Vec<u8> {
    let (mut sim, _, _) = build_ring(4, QueueKind::Heap, true);
    sim.run_for(250);
    capture(&mut sim).to_bytes()
}

#[test]
fn wrong_magic_is_a_typed_error() {
    let mut bytes = victim_bytes();
    bytes[0] ^= 0xFF;
    match Snapshot::from_bytes(&bytes) {
        Err(SnapshotError::BadMagic { found }) => {
            assert_ne!(found, SNAPSHOT_MAGIC);
        }
        other => panic!("expected BadMagic, got {other:?}"),
    }
}

#[test]
fn wrong_version_is_a_typed_error() {
    let mut bytes = victim_bytes();
    // Version is the little-endian u32 right after the 4-byte magic.
    bytes[4..8].copy_from_slice(&(SNAPSHOT_VERSION + 1).to_le_bytes());
    match Snapshot::from_bytes(&bytes) {
        Err(SnapshotError::UnsupportedVersion { found }) => {
            assert_eq!(found, SNAPSHOT_VERSION + 1);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn every_truncation_is_a_typed_error() {
    let bytes = victim_bytes();
    for len in 0..bytes.len() {
        assert!(
            Snapshot::from_bytes(&bytes[..len]).is_err(),
            "truncation to {len} bytes parsed"
        );
    }
}

#[test]
fn payload_corruption_is_caught_by_the_checksum() {
    // Flip one byte inside the first section's payload: the per-section
    // CRC must reject it. The payload of section "kernel" starts after
    // magic(4) + version(4) + section count(4) + name len(4) + "kernel"
    // + payload len(8) + crc(4).
    let bytes = victim_bytes();
    let payload_start = 4 + 4 + 4 + 4 + "kernel".len() + 8 + 4;
    for delta in [0usize, 7, 31] {
        let mut corrupt = bytes.clone();
        corrupt[payload_start + delta] ^= 0x40;
        match Snapshot::from_bytes(&corrupt) {
            Err(SnapshotError::ChecksumMismatch { section }) => {
                assert_eq!(section, "kernel");
            }
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
    }
}

#[test]
fn corrupt_component_payload_is_a_typed_error_on_restore() {
    // A snapshot that *parses* (checksums recomputed over garbage) must
    // still fail restore with a typed error, not a panic: here the
    // kernel section claims an out-of-range component in an event.
    let (mut sim, _, _) = build_ring(2, QueueKind::Heap, true);
    sim.run_for(50);
    let snap = capture(&mut sim);
    let mut garbled = Snapshot::new();
    for name in snap.section_names() {
        let mut payload = snap.section(name).unwrap().to_vec();
        if name == "kernel" {
            // Saturate a tail chunk: event component indices, seq
            // counters and bounds checks all trip on 0xFF floods.
            let n = payload.len();
            payload[n.saturating_sub(24)..].fill(0xFF);
        }
        garbled.push_section(name.to_string(), payload);
    }
    let reparsed = Snapshot::from_bytes(&garbled.to_bytes()).expect("checksums are consistent");
    let (mut target, _, _) = build_ring(2, QueueKind::Heap, true);
    assert!(
        apply(&mut target, &reparsed).is_err(),
        "garbled kernel section restored successfully"
    );
}

#[test]
fn restore_onto_wrong_topology_is_a_mismatch() {
    let (mut sim, _, _) = build_ring(3, QueueKind::Heap, true);
    sim.run_for(50);
    let snap = capture(&mut sim);
    let (mut smaller, _, _) = build_ring(2, QueueKind::Heap, true);
    match apply(&mut smaller, &snap) {
        Err(SnapshotError::Mismatch { .. }) => {}
        other => panic!("expected Mismatch, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary bit flips anywhere in a valid snapshot never panic:
    /// they parse to a typed error, or (flips confined to uncovered
    /// framing like section names) to a snapshot that still restores or
    /// fails restore with a typed error.
    #[test]
    fn random_bit_flips_never_panic(
        byte_seed in 0u64..u64::MAX,
        flips in 1usize..8,
    ) {
        let bytes = victim_bytes();
        let mut corrupt = bytes.clone();
        let mut rng = byte_seed;
        for _ in 0..flips {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let pos = (rng >> 24) as usize % corrupt.len();
            let bit = (rng >> 8) as u32 % 8;
            corrupt[pos] ^= 1 << bit;
        }
        if let Ok(snap) = Snapshot::from_bytes(&corrupt) {
            let (mut target, _, _) = build_ring(4, QueueKind::Heap, true);
            // Either it restores (flip landed in dead framing) or it is
            // a typed error; both are fine — panicking is not.
            let _ = apply(&mut target, &snap);
        }
    }

    /// Truncation at a random point of a random capture is always typed.
    #[test]
    fn random_truncations_are_typed(cut_permille in 0u64..1000) {
        let bytes = victim_bytes();
        let len = (bytes.len() as u64 * cut_permille / 1000) as usize;
        prop_assert!(Snapshot::from_bytes(&bytes[..len]).is_err());
    }
}
