//! Differential tests of the two dispatch engines: for every encodable
//! instruction, executing the predecoded micro-op (decoded-instruction
//! cache on) and interpreting the word through the reference path must
//! produce identical architectural state, cycle charges, statistics and
//! fault behaviour. Includes the self-modifying-code invalidation
//! regression tests for the cache.

use dmi_isa::{decode, Asm, Cond, Reg};
use dmi_iss::{CpuCore, ExtBus, FlatBus, LocalMemory, StepEvent};
use proptest::prelude::*;

const MEM_SIZE: u32 = 0x1000;
const CODE_BASE: u32 = 0x100;
const EXT_BASE: u32 = CpuCore::DEFAULT_EXT_BASE;
const EXT_SIZE: u32 = 0x100;

/// Everything observable about a core after a step sequence.
#[derive(Debug, PartialEq)]
struct Observation {
    events: Vec<StepEvent>,
    regs: Vec<u32>,
    nzcv: (bool, bool, bool, bool),
    cycles: u64,
    halted: bool,
    exit_code: u32,
    console: String,
    // Dispatch counters deliberately excluded: they differ by design.
    instructions: u64,
    loads: u64,
    stores: u64,
    ext_reads: u64,
    ext_writes: u64,
    branches: u64,
    swis: u64,
    cond_skipped: u64,
    fault: Option<String>,
    local_mem: Vec<u8>,
    ext_mem: Vec<u32>,
    ext_accesses: u64,
}

fn observe(cpu: &CpuCore, bus: &mut FlatBus, events: Vec<StepEvent>) -> Observation {
    let s = cpu.stats();
    let f = cpu.flags();
    let ext_mem = (0..EXT_SIZE / 4)
        .map(|i| match bus.ext_read(EXT_BASE + i * 4, dmi_iss::ExtWidth::Word) {
            dmi_iss::ExtResult::Done(v) => v,
            other => panic!("flat bus readback failed: {other:?}"),
        })
        .collect();
    Observation {
        events,
        regs: (0..16).map(|i| cpu.reg(Reg::new(i))).collect(),
        nzcv: (f.n, f.z, f.c, f.v),
        cycles: cpu.cycles(),
        halted: cpu.is_halted(),
        exit_code: cpu.exit_code(),
        console: cpu.console().text(),
        instructions: s.instructions,
        loads: s.loads,
        stores: s.stores,
        ext_reads: s.ext_reads,
        ext_writes: s.ext_writes,
        branches: s.branches,
        swis: s.swis,
        cond_skipped: s.cond_skipped,
        fault: cpu.fault().map(|f| f.to_string()),
        local_mem: cpu.local().read_slice(0, MEM_SIZE as usize).unwrap().to_vec(),
        ext_mem,
        ext_accesses: bus.accesses,
    }
}

/// Builds a core + bus pair: program words at `CODE_BASE`, registers and
/// flags from the given seeds, data pattern in local and external memory.
fn setup(words: &[u32], regs: &[u32; 13], flags: u8, predecode: bool) -> (CpuCore, FlatBus) {
    let mut cpu = CpuCore::new(0, LocalMemory::new(0, MEM_SIZE));
    cpu.set_predecode(predecode);
    // Deterministic data pattern so wild loads read defined values.
    for a in (0..MEM_SIZE).step_by(4) {
        cpu.local_mut()
            .write32(a, a.wrapping_mul(0x9E37_79B9))
            .unwrap();
    }
    let mut a = Asm::new();
    for &w in words {
        a.word(w);
    }
    cpu.load_program(&a.assemble(CODE_BASE).unwrap());
    for (i, &v) in regs.iter().enumerate() {
        cpu.set_reg(Reg::new(i as u8), v);
    }
    // r13 (sp) keeps its reset value; r14 gets a fixed link address.
    cpu.set_reg(Reg::LR, CODE_BASE + 0x40);
    let mut bus = FlatBus::new(EXT_BASE, EXT_SIZE);
    for i in 0..EXT_SIZE / 4 {
        bus.ext_write(
            EXT_BASE + i * 4,
            0xABu32.wrapping_mul(i + 1),
            dmi_iss::ExtWidth::Word,
        );
    }
    bus.accesses = 0;
    cpu.set_flags(dmi_iss::Flags {
        n: flags & 1 != 0,
        z: flags & 2 != 0,
        c: flags & 4 != 0,
        v: flags & 8 != 0,
    });
    (cpu, bus)
}

/// Runs the same program on both engines and returns their observations.
fn run_both(words: &[u32], regs: &[u32; 13], flags: u8, steps: u32) -> (Observation, Observation) {
    let run = |predecode: bool| {
        let (mut cpu, mut bus) = setup(words, regs, flags, predecode);
        let mut events = Vec::new();
        for _ in 0..steps {
            let ev = cpu.step(&mut bus);
            let stop = !matches!(ev, StepEvent::Executed { .. });
            events.push(ev);
            if stop {
                break;
            }
        }
        observe(&cpu, &mut bus, events)
    };
    (run(true), run(false))
}

/// Register-value strategy biased toward addresses that exercise local
/// loads/stores, the external window, and boundary conditions.
fn reg_value() -> impl Strategy<Value = u32> {
    prop_oneof![
        3 => (0u32..MEM_SIZE).prop_map(|v| v & !3),
        2 => 0u32..MEM_SIZE,
        2 => (0u32..EXT_SIZE).prop_map(|v| EXT_BASE + (v & !3)),
        1 => Just(MEM_SIZE - 4),
        1 => Just(EXT_BASE),
        1 => any::<u32>(),
        1 => 0u32..64,
    ]
}

fn reg_file() -> impl Strategy<Value = [u32; 13]> {
    proptest::collection::vec(reg_value(), 13).prop_map(|v| {
        let mut r = [0u32; 13];
        r.copy_from_slice(&v);
        r
    })
}

/// Instruction-word strategy: random words filtered to valid encodings,
/// with half the cases forced to condition AL so they actually execute.
fn instr_word() -> impl Strategy<Value = u32> {
    (any::<u32>(), any::<bool>()).prop_filter_map("undecodable word", |(w, force_al)| {
        let w = if force_al { (w & 0x0FFF_FFFF) | 0xE000_0000 } else { w };
        decode(w).ok().map(|_| w)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1500))]

    /// Single arbitrary instruction: both engines observe identically.
    #[test]
    fn single_instruction_equivalence(
        word in instr_word(),
        regs in reg_file(),
        flags in 0u8..16,
    ) {
        let (pre, refr) = run_both(&[word], &regs, flags, 1);
        prop_assert_eq!(
            &pre, &refr,
            "engines diverged on word {:#010x} ({})",
            word,
            dmi_isa::disasm(word)
        );
    }

    /// Short straight-line-with-jumps programs: trajectories match over
    /// many steps (exercises cache fills, hits, the fused sequential path
    /// and incidental self-modification by wild stores).
    #[test]
    fn program_trajectory_equivalence(
        words in proptest::collection::vec(instr_word(), 1..24),
        regs in reg_file(),
        flags in 0u8..16,
    ) {
        let (pre, refr) = run_both(&words, &regs, flags, 200);
        prop_assert_eq!(&pre, &refr, "engines diverged on program {:x?}", words);
    }
}

/// The cache must observe stores that rewrite upcoming instructions:
/// execute a loop body once, overwrite one of its instructions from the
/// loop itself, and require the rewritten semantics on the next pass.
#[test]
fn self_modifying_code_invalidates_cache() {
    let run = |predecode: bool| {
        let mut a = Asm::new();
        // r4 counts passes; r1 is the observed payload.
        a.li(Reg::R4, 0);
        a.label("loop");
        a.label("target");
        a.mov(Reg::R1, 7u32.into()); // the instruction that gets rewritten
        // After the first pass, overwrite `target` with `mov r1, #42`.
        a.li(Reg::R0, 0); // patched below with the new encoding
        a.li(Reg::R2, 0); // patched below with the target address
        a.str(Reg::R0, Reg::R2, 0);
        a.add(Reg::R4, Reg::R4, 1u32.into());
        a.cmp(Reg::R4, 2u32.into());
        a.b_cond(Cond::Lt, "loop");
        a.swi(0);
        let mut p = a.assemble(CODE_BASE).unwrap();
        let target = p.symbol("target").unwrap();
        // Patch the immates now that addresses are known.
        let new_instr = dmi_isa::encode(&dmi_isa::Instr::Dp {
            cond: Cond::Al,
            op: dmi_isa::DpOp::Mov,
            s: false,
            rd: Reg::R1,
            rn: Reg::R0,
            op2: dmi_isa::Operand2::Imm { imm8: 42, rot: 0 },
        });
        // Rebuild with the real constants.
        let mut a = Asm::new();
        a.li(Reg::R4, 0);
        a.label("loop");
        a.label("target");
        a.mov(Reg::R1, 7u32.into());
        a.li(Reg::R0, new_instr);
        a.li(Reg::R2, target);
        a.str(Reg::R0, Reg::R2, 0);
        a.add(Reg::R4, Reg::R4, 1u32.into());
        a.cmp(Reg::R4, 2u32.into());
        a.b_cond(Cond::Lt, "loop");
        a.swi(0);
        p = a.assemble(CODE_BASE).unwrap();

        let mut cpu = CpuCore::new(0, LocalMemory::new(0, MEM_SIZE));
        cpu.set_predecode(predecode);
        cpu.load_program(&p);
        let ev = cpu.run(&mut dmi_iss::NoBus, 10_000);
        assert_eq!(ev, StepEvent::Halted, "program must halt ({ev:?})");
        (cpu.reg(Reg::R1), cpu.reg(Reg::R4), cpu.cycles(), cpu.stats())
    };
    let (r1_pre, passes_pre, cycles_pre, stats_pre) = run(true);
    let (r1_ref, passes_ref, cycles_ref, _) = run(false);
    assert_eq!(passes_pre, 2);
    assert_eq!(
        r1_pre, 42,
        "second pass must execute the rewritten instruction"
    );
    assert_eq!((r1_pre, passes_pre, cycles_pre), (r1_ref, passes_ref, cycles_ref));
    assert!(
        stats_pre.icache_hits > 0,
        "the loop must actually hit the cache: {stats_pre:?}"
    );
}

/// A store into already-cached code immediately before re-execution: the
/// generation check alone (without the word compare) would serve the stale
/// micro-op.
#[test]
fn store_to_cached_line_takes_effect_next_fetch() {
    let mut a = Asm::new();
    // Pass 0: r5 = 1, executes `add r1, r1, #1` at `patch`.
    // Then overwrite `patch` with `add r1, r1, #9` and loop once more.
    let add9 = dmi_isa::encode(&dmi_isa::Instr::Dp {
        cond: Cond::Al,
        op: dmi_isa::DpOp::Add,
        s: false,
        rd: Reg::R1,
        rn: Reg::R1,
        op2: dmi_isa::Operand2::Imm { imm8: 9, rot: 0 },
    });
    a.li(Reg::R1, 0);
    a.li(Reg::R4, 0);
    a.label("loop");
    a.label("patch");
    a.add(Reg::R1, Reg::R1, 1u32.into());
    a.li(Reg::R0, add9);
    a.adr(Reg::R2, "patch");
    a.str(Reg::R0, Reg::R2, 0);
    a.add(Reg::R4, Reg::R4, 1u32.into());
    a.cmp(Reg::R4, 3u32.into());
    a.b_cond(Cond::Lt, "loop");
    a.swi(0);
    let p = a.assemble(CODE_BASE).unwrap();

    for predecode in [true, false] {
        let mut cpu = CpuCore::new(0, LocalMemory::new(0, MEM_SIZE));
        cpu.set_predecode(predecode);
        cpu.load_program(&p);
        assert_eq!(cpu.run(&mut dmi_iss::NoBus, 10_000), StepEvent::Halted);
        // Pass 1 adds 1, passes 2 and 3 add 9 each.
        assert_eq!(
            cpu.reg(Reg::R1),
            19,
            "predecode={predecode}: rewritten add must execute on later passes"
        );
    }
}

/// Dispatch counters: the cached path reports hits after the first pass
/// over a loop; the reference path reports none.
#[test]
fn icache_counters_surface() {
    let mut a = Asm::new();
    a.li(Reg::R0, 50);
    a.label("loop");
    a.sub(Reg::R0, Reg::R0, 1u32.into());
    a.cmp(Reg::R0, 0u32.into());
    a.b_cond(Cond::Ne, "loop");
    a.swi(0);
    let p = a.assemble(0).unwrap();

    let mut cpu = CpuCore::new(0, LocalMemory::new(0, MEM_SIZE));
    cpu.set_predecode(true);
    cpu.load_program(&p);
    assert_eq!(cpu.run(&mut dmi_iss::NoBus, 100_000), StepEvent::Halted);
    let s = cpu.stats();
    assert!(s.icache_hits > 100, "loop iterations must hit: {s:?}");
    assert!(
        s.icache_misses <= 8,
        "only the first pass should miss: {s:?}"
    );
    assert!(s.icache_hit_rate() > 0.9);

    let mut cpu = CpuCore::new(0, LocalMemory::new(0, MEM_SIZE));
    cpu.set_predecode(false);
    cpu.load_program(&p);
    assert_eq!(cpu.run(&mut dmi_iss::NoBus, 100_000), StepEvent::Halted);
    let s = cpu.stats();
    assert_eq!((s.icache_hits, s.icache_misses), (0, 0));
    assert_eq!(s.icache_hit_rate(), 0.0);
}
