//! Per-instruction semantics tests for the CPU core, driven through the
//! assembler so the whole ISA pipeline is exercised end to end.

use dmi_isa::{Asm, Reg};
use dmi_iss::{CpuCore, CpuFault, FlatBus, LocalMemory, NoBus, StepEvent};

const R0: Reg = Reg::R0;
const R1: Reg = Reg::R1;
const R2: Reg = Reg::R2;
const R3: Reg = Reg::R3;
const R4: Reg = Reg::R4;

/// Assembles `body`, appends a halt, runs to completion, returns the core.
fn run(build: impl FnOnce(&mut Asm)) -> CpuCore {
    let mut a = Asm::new();
    build(&mut a);
    a.swi(0);
    let prog = a.assemble(0).unwrap();
    let mut cpu = CpuCore::new(0, LocalMemory::new(0, 0x10000));
    cpu.load_program(&prog);
    match cpu.run(&mut NoBus, 1_000_000) {
        StepEvent::Halted => cpu,
        other => panic!("program did not halt: {other:?}\nfault: {:?}", cpu.fault()),
    }
}

/// Assembles source text, runs to completion, returns the core.
fn run_text(src: &str) -> CpuCore {
    let prog = dmi_isa::assemble_text(src, 0).unwrap();
    let mut cpu = CpuCore::new(0, LocalMemory::new(0, 0x10000));
    cpu.load_program(&prog);
    match cpu.run(&mut NoBus, 1_000_000) {
        StepEvent::Halted => cpu,
        other => panic!("program did not halt: {other:?}\nfault: {:?}", cpu.fault()),
    }
}

#[test]
fn arithmetic_basics() {
    let cpu = run(|a| {
        a.li(R0, 20);
        a.li(R1, 22);
        a.add(R2, R0, R1.into());
        a.sub(R3, R2, 2u32.into());
        a.rsb(R4, R0, R1.into()); // 22 - 20
    });
    assert_eq!(cpu.reg(R2), 42);
    assert_eq!(cpu.reg(R3), 40);
    assert_eq!(cpu.reg(R4), 2);
}

#[test]
fn logic_and_moves() {
    let cpu = run(|a| {
        a.li(R0, 0b1100);
        a.li(R1, 0b1010);
        a.and(R2, R0, R1.into());
        a.orr(R3, R0, R1.into());
        a.eor(R4, R0, R1.into());
        a.bic(Reg::R5, R0, R1.into());
        a.mvn(Reg::R6, R0.into());
    });
    assert_eq!(cpu.reg(R2), 0b1000);
    assert_eq!(cpu.reg(R3), 0b1110);
    assert_eq!(cpu.reg(R4), 0b0110);
    assert_eq!(cpu.reg(Reg::R5), 0b0100);
    assert_eq!(cpu.reg(Reg::R6), !0b1100u32);
}

#[test]
fn carry_chain_64bit_add() {
    // 64-bit add: (0xFFFFFFFF, 1) + (1, 0) = (0, 2) with adc.
    let cpu = run(|a| {
        a.li(R0, 0xFFFF_FFFF); // low a
        a.li(R1, 1); // high a
        a.li(R2, 1); // low b
        a.li(R3, 0); // high b
        a.adds(R0, R0, R2.into());
        a.adc(R1, R1, R3.into());
    });
    assert_eq!(cpu.reg(R0), 0);
    assert_eq!(cpu.reg(R1), 2);
}

#[test]
fn flags_and_conditional_execution() {
    let cpu = run_text(
        r#"
        li   r0, #5
        cmp  r0, #5
        moveq r1, #1
        movne r2, #1
        cmp  r0, #6
        movlt r3, #1
        movge r4, #1
        swi  #0
    "#,
    );
    assert_eq!(cpu.reg(R1), 1, "eq taken");
    assert_eq!(cpu.reg(R2), 0, "ne skipped");
    assert_eq!(cpu.reg(R3), 1, "lt taken");
    assert_eq!(cpu.reg(R4), 0, "ge skipped");
    assert!(cpu.stats().cond_skipped >= 2);
}

#[test]
fn shifts_update_carry() {
    let cpu = run_text(
        r#"
        li   r0, #0x81
        movs r1, r0, lsr #1   ; shifts a 1 out -> carry set
        movcs r2, #1
        movs r3, r0, lsl #1
        swi  #0
    "#,
    );
    assert_eq!(cpu.reg(R1), 0x40);
    assert_eq!(cpu.reg(R2), 1, "carry from lsr");
    assert_eq!(cpu.reg(R3), 0x102);
}

#[test]
fn asr_is_arithmetic() {
    let cpu = run(|a| {
        a.li(R0, 0x8000_0000);
        a.asr(R1, R0, 31);
        a.lsr(R2, R0, 31);
    });
    assert_eq!(cpu.reg(R1), 0xFFFF_FFFF);
    assert_eq!(cpu.reg(R2), 1);
}

#[test]
fn multiply_family() {
    let cpu = run(|a| {
        a.li(R0, 7);
        a.li(R1, 6);
        a.mul(R2, R0, R1); // 42
        a.li(R3, 100);
        a.mla(R4, R0, R1, R3); // 142
        a.li(Reg::R5, 0xFFFF_FFFF);
        a.li(Reg::R6, 2);
        a.umull(Reg::R7, Reg::R8, Reg::R5, Reg::R6); // 0x1_FFFF_FFFE
        a.li(Reg::R9, 0xFFFF_FFFF); // -1
        a.smull(Reg::R10, Reg::R11, Reg::R9, Reg::R6); // -2
    });
    assert_eq!(cpu.reg(R2), 42);
    assert_eq!(cpu.reg(R4), 142);
    assert_eq!(cpu.reg(Reg::R7), 0xFFFF_FFFE);
    assert_eq!(cpu.reg(Reg::R8), 1);
    assert_eq!(cpu.reg(Reg::R10), 0xFFFF_FFFE); // -2 low
    assert_eq!(cpu.reg(Reg::R11), 0xFFFF_FFFF); // -2 high
}

#[test]
fn long_multiply_accumulate() {
    // smlal accumulating 2 * (3 iterations of 10*10).
    let cpu = run_text(
        r#"
        li   r4, #3      ; counter
        li   r0, #0      ; acc lo
        li   r1, #0      ; acc hi
        li   r2, #10
    loop:
        smlal r0, r1, r2, r2
        subs r4, r4, #1
        bne  loop
        swi  #0
    "#,
    );
    assert_eq!(cpu.reg(R0), 300);
    assert_eq!(cpu.reg(R1), 0);
}

#[test]
fn loads_stores_all_widths() {
    let cpu = run(|a| {
        a.li(R0, 0x2000); // buffer
        a.li(R1, 0xDEAD_BEEF);
        a.str(R1, R0, 0);
        a.ldr(R2, R0, 0);
        a.ldrb(R3, R0, 0); // 0xEF
        a.ldrh(R4, R0, 0); // 0xBEEF
        a.ldrsb(Reg::R5, R0, 0); // sign-extended 0xEF
        a.ldrsh(Reg::R6, R0, 0); // sign-extended 0xBEEF
        a.li(Reg::R7, 0x12);
        a.strb(Reg::R7, R0, 1);
        a.ldr(Reg::R8, R0, 0);
    });
    assert_eq!(cpu.reg(R2), 0xDEAD_BEEF);
    assert_eq!(cpu.reg(R3), 0xEF);
    assert_eq!(cpu.reg(R4), 0xBEEF);
    assert_eq!(cpu.reg(Reg::R5), 0xFFFF_FFEF);
    assert_eq!(cpu.reg(Reg::R6), 0xFFFF_BEEF);
    assert_eq!(cpu.reg(Reg::R8), 0xDEAD_12EF);
}

#[test]
fn addressing_modes_writeback() {
    let cpu = run(|a| {
        a.li(R0, 0x2000);
        a.li(R1, 0x11);
        a.str_post(R1, R0, 4); // [0x2000] = 0x11, r0 = 0x2004
        a.li(R1, 0x22);
        a.str_post(R1, R0, 4); // [0x2004] = 0x22, r0 = 0x2008
        a.li(R2, 0x2000);
        a.ldr_pre(R3, R2, 4); // r3 = [0x2004], r2 = 0x2004
        a.ldr(R4, R2, -4); // r4 = [0x2000]
    });
    assert_eq!(cpu.reg(R0), 0x2008);
    assert_eq!(cpu.reg(R2), 0x2004);
    assert_eq!(cpu.reg(R3), 0x22);
    assert_eq!(cpu.reg(R4), 0x11);
}

#[test]
fn register_offset_addressing() {
    let cpu = run(|a| {
        a.li(R0, 0x2000);
        a.li(R1, 8);
        a.li(R2, 0xABCD);
        a.str_r(R2, R0, R1);
        a.ldr_r(R3, R0, R1);
        a.ldr(R4, R0, 8);
    });
    assert_eq!(cpu.reg(R3), 0xABCD);
    assert_eq!(cpu.reg(R4), 0xABCD);
}

#[test]
fn block_transfer_push_pop() {
    let cpu = run(|a| {
        a.li(R0, 1);
        a.li(R1, 2);
        a.li(R2, 3);
        a.push(&[R0, R1, R2]);
        a.li(R0, 0);
        a.li(R1, 0);
        a.li(R2, 0);
        a.pop(&[R0, R1, R2]);
    });
    assert_eq!(cpu.reg(R0), 1);
    assert_eq!(cpu.reg(R1), 2);
    assert_eq!(cpu.reg(R2), 3);
    // Stack pointer restored.
    assert_eq!(cpu.reg(Reg::SP), 0x10000);
}

#[test]
fn function_call_and_return() {
    let cpu = run_text(
        r#"
            li   r0, #10
            bl   double
            bl   double
            swi  #0
        double:
            add  r0, r0, r0
            bx   lr
    "#,
    );
    assert_eq!(cpu.reg(R0), 40);
    assert!(cpu.stats().branches >= 4);
}

#[test]
fn nested_calls_with_stack() {
    let cpu = run_text(
        r#"
            li   r0, #5
            bl   fact
            swi  #0
        ; r0 = fact(r0), recursive
        fact:
            cmp  r0, #1
            bxle lr
            push {r4, lr}
            mov  r4, r0
            sub  r0, r0, #1
            bl   fact
            mul  r0, r4, r0
            pop  {r4, lr}
            bx   lr
    "#,
    );
    assert_eq!(cpu.reg(R0), 120);
}

#[test]
fn pc_relative_and_pc_write() {
    let cpu = run_text(
        r#"
            adr  r0, table
            ldr  r1, [r0]
            ldr  r2, [r0, #4]
            b    over
        table:
            .word 0x1111
            .word 0x2222
        over:
            swi  #0
    "#,
    );
    assert_eq!(cpu.reg(R1), 0x1111);
    assert_eq!(cpu.reg(R2), 0x2222);
}

#[test]
fn clz_counts_leading_zeros() {
    let cpu = run(|a| {
        a.li(R0, 1);
        a.clz(R1, R0); // 31
        a.li(R0, 0);
        a.clz(R2, R0); // 32
        a.li(R0, 0x8000_0000);
        a.clz(R3, R0); // 0
    });
    assert_eq!(cpu.reg(R1), 31);
    assert_eq!(cpu.reg(R2), 32);
    assert_eq!(cpu.reg(R3), 0);
}

#[test]
fn movw_movt_compose() {
    let cpu = run(|a| {
        a.movw(R0, 0x5678);
        a.movt(R0, 0x1234);
        a.movw(R1, 0xFFFF);
    });
    assert_eq!(cpu.reg(R0), 0x1234_5678);
    assert_eq!(cpu.reg(R1), 0x0000_FFFF);
}

#[test]
fn syscalls_console_and_cycles() {
    let cpu = run_text(
        r#"
        li   r0, #72      ; 'H'
        swi  #1
        li   r0, #105     ; 'i'
        swi  #1
        li   r0, #42
        swi  #3           ; putint
        swi  #2           ; cycles -> r0/r1
        swi  #4           ; cpuid -> r0
        swi  #0
    "#,
    );
    assert_eq!(cpu.console().text(), "Hi42\n");
    assert_eq!(cpu.reg(R0), 0, "cpu id 0");
    assert!(cpu.cycles() > 0);
}

#[test]
fn halt_exit_code_and_idempotence() {
    let mut a = Asm::new();
    a.li(R0, 7);
    a.swi(0);
    let prog = a.assemble(0).unwrap();
    let mut cpu = CpuCore::new(3, LocalMemory::new(0, 0x1000));
    cpu.load_program(&prog);
    assert_eq!(cpu.run(&mut NoBus, 100), StepEvent::Halted);
    assert_eq!(cpu.exit_code(), 7);
    assert!(cpu.is_halted());
    assert_eq!(cpu.step(&mut NoBus), StepEvent::Halted);
    assert_eq!(cpu.id(), 3);
}

#[test]
fn faults_are_sticky() {
    let mut a = Asm::new();
    a.li(R0, 0x3001); // unaligned
    a.ldr(R1, R0, 0);
    let prog = a.assemble(0).unwrap();
    let mut cpu = CpuCore::new(0, LocalMemory::new(0, 0x4000));
    cpu.load_program(&prog);
    let ev = cpu.run(&mut NoBus, 100);
    match ev {
        StepEvent::Fault(CpuFault::Unaligned { addr, align }) => {
            assert_eq!(addr, 0x3001);
            assert_eq!(align, 4);
        }
        other => panic!("expected unaligned fault, got {other:?}"),
    }
    // Sticky: same fault again.
    assert!(matches!(
        cpu.step(&mut NoBus),
        StepEvent::Fault(CpuFault::Unaligned { .. })
    ));
}

#[test]
fn data_abort_between_local_and_window() {
    let mut a = Asm::new();
    a.li(R0, 0x0100_0000); // beyond local, below ext window
    a.ldr(R1, R0, 0);
    let prog = a.assemble(0).unwrap();
    let mut cpu = CpuCore::new(0, LocalMemory::new(0, 0x4000));
    cpu.load_program(&prog);
    assert!(matches!(
        cpu.run(&mut NoBus, 100),
        StepEvent::Fault(CpuFault::DataAbort { addr: 0x0100_0000 })
    ));
}

#[test]
fn undefined_instruction_faults() {
    let mut cpu = CpuCore::new(0, LocalMemory::new(0, 0x1000));
    cpu.local_mut().write32(0, 0xE000_0010).unwrap(); // reserved bit set
    assert!(matches!(
        cpu.step(&mut NoBus),
        StepEvent::Fault(CpuFault::Undefined { addr: 0, .. })
    ));
}

#[test]
fn unknown_syscall_faults() {
    let mut a = Asm::new();
    a.swi(999);
    let prog = a.assemble(0).unwrap();
    let mut cpu = CpuCore::new(0, LocalMemory::new(0, 0x1000));
    cpu.load_program(&prog);
    assert!(matches!(
        cpu.run(&mut NoBus, 10),
        StepEvent::Fault(CpuFault::UnknownSyscall(999))
    ));
}

#[test]
fn external_accesses_via_flat_bus() {
    let mut a = Asm::new();
    a.li(R0, 0x8000_0000);
    a.li(R1, 0xCAFE_F00D);
    a.str(R1, R0, 0);
    a.ldr(R2, R0, 0);
    a.ldrh(R3, R0, 0);
    a.swi(0);
    let prog = a.assemble(0).unwrap();
    let mut cpu = CpuCore::new(0, LocalMemory::new(0, 0x1000));
    cpu.load_program(&prog);
    let mut bus = FlatBus::new(0x8000_0000, 0x1000);
    assert_eq!(cpu.run(&mut bus, 100), StepEvent::Halted);
    assert_eq!(cpu.reg(R2), 0xCAFE_F00D);
    assert_eq!(cpu.reg(R3), 0xF00D);
    assert_eq!(cpu.stats().ext_reads, 2);
    assert_eq!(cpu.stats().ext_writes, 1);
}

#[test]
fn external_block_transfer_faults() {
    let prog = dmi_isa::assemble_text(
        r#"
        li r0, #0x80000000
        stmia r0, {r1, r2}
    "#,
        0,
    )
    .unwrap();
    let mut cpu = CpuCore::new(0, LocalMemory::new(0, 0x1000));
    cpu.load_program(&prog);
    let mut bus = FlatBus::new(0x8000_0000, 0x1000);
    assert!(matches!(
        cpu.run(&mut bus, 100),
        StepEvent::Fault(CpuFault::ExternalBlockTransfer { .. })
    ));
}

#[test]
fn timing_model_counts_cycles() {
    // 2 li (movw) + mul + halt under default costs: 1 + 1 + 3 + 3 = 8.
    let cpu = run(|a| {
        a.movw(R0, 3);
        a.movw(R1, 4);
        a.mul(R2, R0, R1);
    });
    assert_eq!(cpu.cycles(), 8);
    assert_eq!(cpu.stats().instructions, 4);
}

#[test]
fn memcpy_program() {
    // Copy 16 words through registers, checking a realistic loop.
    let cpu = run_text(
        r#"
        .equ SRC, 0x2000
        .equ DST, 0x3000
            li   r0, #SRC
            li   r1, #DST
            li   r2, #16       ; words
            li   r3, #0
        fill:                   ; src[i] = i * 3
            li   r5, #3
            mul  r4, r3, r5
            str  r4, [r0], #4
            add  r3, r3, #1
            cmp  r3, r2
            bne  fill
            li   r0, #SRC
        copy:
            ldr  r4, [r0], #4
            str  r4, [r1], #4
            subs r2, r2, #1
            bne  copy
            swi  #0
    "#,
    );
    // Verify a few copied words.
    assert_eq!(cpu.local().read32(0x3000).unwrap(), 0);
    assert_eq!(cpu.local().read32(0x3004).unwrap(), 3);
    assert_eq!(cpu.local().read32(0x303C).unwrap(), 45);
}

#[test]
fn bubble_sort_program() {
    let cpu = run_text(
        r#"
        .equ BUF, 0x2000
        .equ N, 8
            ; fill with descending values 8..1
            li   r0, #BUF
            li   r1, #N
        fill:
            str  r1, [r0], #4
            subs r1, r1, #1
            bne  fill
            ; bubble sort
            li   r6, #N
        outer:
            li   r0, #BUF
            li   r5, #0          ; swapped flag
            li   r7, #1          ; index
        inner:
            ldr  r2, [r0]
            ldr  r3, [r0, #4]
            cmp  r2, r3
            ble  noswap
            str  r3, [r0]
            str  r2, [r0, #4]
            li   r5, #1
        noswap:
            add  r0, r0, #4
            add  r7, r7, #1
            cmp  r7, #N
            blt  inner
            cmp  r5, #0
            bne  outer
            swi  #0
    "#,
    );
    for i in 0..8u32 {
        assert_eq!(cpu.local().read32(0x2000 + i * 4).unwrap(), i + 1);
    }
}
