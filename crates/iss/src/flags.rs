//! Processor status flags.

use dmi_isa::Cond;

/// The NZCV condition flags of the CPSR.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Flags {
    /// Negative (bit 31 of the result).
    pub n: bool,
    /// Zero.
    pub z: bool,
    /// Carry / not-borrow.
    pub c: bool,
    /// Signed overflow.
    pub v: bool,
}

impl Flags {
    /// Evaluates a condition code against these flags.
    #[inline]
    pub fn check(&self, cond: Cond) -> bool {
        cond.holds(self.n, self.z, self.c, self.v)
    }

    /// Sets N and Z from a 32-bit result, leaving C and V untouched.
    #[inline]
    pub fn set_nz(&mut self, result: u32) {
        self.n = result & 0x8000_0000 != 0;
        self.z = result == 0;
    }

    /// Sets N and Z from a 64-bit result (long multiplies).
    #[inline]
    pub fn set_nz64(&mut self, result: u64) {
        self.n = result & 0x8000_0000_0000_0000 != 0;
        self.z = result == 0;
    }
}

/// Computes `a + b + carry_in`, returning `(result, carry_out, overflow)`.
#[inline]
pub fn add_with_carry(a: u32, b: u32, carry_in: bool) -> (u32, bool, bool) {
    let wide = a as u64 + b as u64 + carry_in as u64;
    let result = wide as u32;
    let carry = wide > u32::MAX as u64;
    let overflow = (!(a ^ b) & (a ^ result)) & 0x8000_0000 != 0;
    (result, carry, overflow)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nz_from_results() {
        let mut f = Flags::default();
        f.set_nz(0);
        assert!(f.z && !f.n);
        f.set_nz(0x8000_0000);
        assert!(!f.z && f.n);
        f.set_nz64(0);
        assert!(f.z);
        f.set_nz64(1 << 63);
        assert!(f.n && !f.z);
    }

    #[test]
    fn adder_carry_and_overflow() {
        // Simple add, no carry.
        assert_eq!(add_with_carry(1, 2, false), (3, false, false));
        // Unsigned wraparound sets carry.
        assert_eq!(add_with_carry(u32::MAX, 1, false), (0, true, false));
        // Positive + positive -> negative sets V.
        let (r, c, v) = add_with_carry(0x7FFF_FFFF, 1, false);
        assert_eq!(r, 0x8000_0000);
        assert!(!c && v);
        // Negative + negative -> positive sets V and C.
        let (r, c, v) = add_with_carry(0x8000_0000, 0x8000_0000, false);
        assert_eq!(r, 0);
        assert!(c && v);
        // Subtraction via complement: a - b == a + !b + 1.
        let (r, c, v) = add_with_carry(5, !3, true);
        assert_eq!(r, 2);
        assert!(c && !v, "no borrow -> carry set");
        let (r, c, _) = add_with_carry(3, !5, true);
        assert_eq!(r, -2i32 as u32);
        assert!(!c, "borrow -> carry clear");
    }

    #[test]
    fn check_delegates_to_cond() {
        let f = Flags {
            n: false,
            z: true,
            c: false,
            v: false,
        };
        assert!(f.check(Cond::Eq));
        assert!(!f.check(Cond::Ne));
        assert!(f.check(Cond::Al));
    }
}
