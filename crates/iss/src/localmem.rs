//! Per-CPU private memory.
//!
//! Each ISS owns a flat private RAM holding its program, stack and local
//! data, modelled as a plain byte array with zero wait states (accesses cost
//! only the instruction's base cycles). Anything outside this range is an
//! *external* access routed to the bus — in this framework, the shared
//! memory window.

use dmi_isa::Program;

/// Byte-addressable private RAM with little-endian layout.
///
/// The memory keeps a monotonically increasing *write generation*
/// ([`LocalMemory::generation`]), bumped by every mutation. Consumers that
/// cache derived views of the contents — the ISS's decoded-instruction
/// cache in particular — record the generation at fill time: an unchanged
/// generation proves the underlying bytes are untouched, and a moved one
/// tells the consumer to re-validate (the same pattern as the pointer
/// table's TLB generation in `dmi-core`).
#[derive(Debug, Clone)]
pub struct LocalMemory {
    base: u32,
    bytes: Vec<u8>,
    /// Bumped on every mutation; see the struct docs.
    gen: u64,
}

/// A memory access violation inside the private range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfRange {
    /// The faulting byte address.
    pub addr: u32,
    /// Transfer width in bytes.
    pub width: u32,
}

impl LocalMemory {
    /// Creates a zeroed memory of `size` bytes starting at `base`.
    pub fn new(base: u32, size: u32) -> Self {
        LocalMemory {
            base,
            bytes: vec![0; size as usize],
            gen: 0,
        }
    }

    /// The current write generation (bumped on every mutation).
    #[inline]
    pub fn generation(&self) -> u64 {
        self.gen
    }

    /// First valid address.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Size in bytes.
    pub fn size(&self) -> u32 {
        self.bytes.len() as u32
    }

    /// Whether an access of `width` bytes at `addr` lies fully inside.
    #[inline]
    pub fn contains(&self, addr: u32, width: u32) -> bool {
        addr >= self.base
            && addr
                .checked_add(width)
                .is_some_and(|end| end - self.base <= self.bytes.len() as u32)
    }

    #[inline]
    fn index(&self, addr: u32, width: u32) -> Result<usize, OutOfRange> {
        if self.contains(addr, width) {
            Ok((addr - self.base) as usize)
        } else {
            Err(OutOfRange { addr, width })
        }
    }

    /// Reads a byte.
    pub fn read8(&self, addr: u32) -> Result<u8, OutOfRange> {
        Ok(self.bytes[self.index(addr, 1)?])
    }

    /// Reads a little-endian halfword.
    pub fn read16(&self, addr: u32) -> Result<u16, OutOfRange> {
        let i = self.index(addr, 2)?;
        Ok(u16::from_le_bytes([self.bytes[i], self.bytes[i + 1]]))
    }

    /// Reads a little-endian word.
    pub fn read32(&self, addr: u32) -> Result<u32, OutOfRange> {
        let i = self.index(addr, 4)?;
        Ok(u32::from_le_bytes([
            self.bytes[i],
            self.bytes[i + 1],
            self.bytes[i + 2],
            self.bytes[i + 3],
        ]))
    }

    /// Writes a byte.
    pub fn write8(&mut self, addr: u32, value: u8) -> Result<(), OutOfRange> {
        let i = self.index(addr, 1)?;
        self.gen = self.gen.wrapping_add(1);
        self.bytes[i] = value;
        Ok(())
    }

    /// Writes a little-endian halfword.
    pub fn write16(&mut self, addr: u32, value: u16) -> Result<(), OutOfRange> {
        let i = self.index(addr, 2)?;
        self.gen = self.gen.wrapping_add(1);
        self.bytes[i..i + 2].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Writes a little-endian word.
    pub fn write32(&mut self, addr: u32, value: u32) -> Result<(), OutOfRange> {
        let i = self.index(addr, 4)?;
        self.gen = self.gen.wrapping_add(1);
        self.bytes[i..i + 4].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Copies a program image into memory at its base address.
    ///
    /// # Panics
    ///
    /// Panics if the image does not fit inside this memory.
    pub fn load_program(&mut self, program: &Program) {
        let bytes = program.to_bytes();
        let start = (program.base() - self.base) as usize;
        self.gen = self.gen.wrapping_add(1);
        self.bytes[start..start + bytes.len()].copy_from_slice(&bytes);
    }

    /// Reads `len` bytes starting at `addr` (test/diagnostic helper).
    pub fn read_slice(&self, addr: u32, len: usize) -> Result<&[u8], OutOfRange> {
        let i = self.index(addr, len as u32)?;
        Ok(&self.bytes[i..i + len])
    }

    /// Writes a byte slice at `addr` (test/diagnostic helper).
    pub fn write_slice(&mut self, addr: u32, data: &[u8]) -> Result<(), OutOfRange> {
        let i = self.index(addr, data.len() as u32)?;
        self.gen = self.gen.wrapping_add(1);
        self.bytes[i..i + data.len()].copy_from_slice(data);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_all_widths() {
        let mut m = LocalMemory::new(0x1000, 0x100);
        m.write8(0x1000, 0xAB).unwrap();
        assert_eq!(m.read8(0x1000).unwrap(), 0xAB);
        m.write16(0x1002, 0xBEEF).unwrap();
        assert_eq!(m.read16(0x1002).unwrap(), 0xBEEF);
        m.write32(0x1004, 0xDEAD_BEEF).unwrap();
        assert_eq!(m.read32(0x1004).unwrap(), 0xDEAD_BEEF);
        // Little-endian byte order.
        assert_eq!(m.read8(0x1004).unwrap(), 0xEF);
        assert_eq!(m.read8(0x1007).unwrap(), 0xDE);
    }

    #[test]
    fn bounds_are_enforced() {
        let mut m = LocalMemory::new(0x1000, 0x10);
        assert!(m.read8(0xFFF).is_err());
        assert!(m.read32(0x100D).is_err(), "word straddles the end");
        assert!(m.read32(0x100C).is_ok(), "last aligned word is fine");
        assert!(m.write8(0x1010, 0).is_err());
        assert_eq!(
            m.read8(0x2000).unwrap_err(),
            OutOfRange {
                addr: 0x2000,
                width: 1
            }
        );
    }

    #[test]
    fn contains_handles_overflowing_addresses() {
        let m = LocalMemory::new(0, 0x10);
        assert!(!m.contains(u32::MAX, 4));
        assert!(m.contains(0xC, 4));
        assert!(!m.contains(0xD, 4));
    }

    #[test]
    fn loads_programs_at_base() {
        let mut a = dmi_isa::Asm::new();
        a.word(0x11223344).word(0x55667788);
        let p = a.assemble(0x20).unwrap();
        let mut m = LocalMemory::new(0, 0x100);
        m.load_program(&p);
        assert_eq!(m.read32(0x20).unwrap(), 0x11223344);
        assert_eq!(m.read32(0x24).unwrap(), 0x55667788);
    }

    #[test]
    fn generation_tracks_every_mutation() {
        let mut m = LocalMemory::new(0, 0x100);
        let g0 = m.generation();
        assert!(m.read32(0).is_ok());
        assert_eq!(m.generation(), g0, "reads do not move the generation");
        m.write8(0, 1).unwrap();
        m.write16(2, 2).unwrap();
        m.write32(4, 3).unwrap();
        m.write_slice(8, &[1, 2]).unwrap();
        assert_eq!(m.generation(), g0 + 4);
        // Failed writes leave the generation untouched.
        assert!(m.write32(0x1000, 0).is_err());
        assert_eq!(m.generation(), g0 + 4);
        let mut a = dmi_isa::Asm::new();
        a.word(1);
        m.load_program(&a.assemble(0).unwrap());
        assert_eq!(m.generation(), g0 + 5);
    }

    #[test]
    fn slice_helpers() {
        let mut m = LocalMemory::new(0, 0x20);
        m.write_slice(4, &[1, 2, 3]).unwrap();
        assert_eq!(m.read_slice(4, 3).unwrap(), &[1, 2, 3]);
        assert!(m.write_slice(0x1E, &[1, 2, 3]).is_err());
    }
}
