//! Per-CPU private memory.
//!
//! Each ISS owns a flat private RAM holding its program, stack and local
//! data, modelled as a plain byte array with zero wait states (accesses cost
//! only the instruction's base cycles). Anything outside this range is an
//! *external* access routed to the bus — in this framework, the shared
//! memory window.

use dmi_isa::Program;

/// Byte-addressable private RAM with little-endian layout.
///
/// The memory keeps a monotonically increasing *write generation*
/// ([`LocalMemory::generation`]), bumped by every mutation. Consumers that
/// cache derived views of the contents — the ISS's decoded-instruction
/// cache in particular — record the generation at fill time: an unchanged
/// generation proves the underlying bytes are untouched, and a moved one
/// tells the consumer to re-validate (the same pattern as the pointer
/// table's TLB generation in `dmi-core`).
#[derive(Debug, Clone)]
pub struct LocalMemory {
    base: u32,
    bytes: Vec<u8>,
    /// Bumped on every mutation; see the struct docs.
    gen: u64,
    /// Dirty-window invariant: every mutation with generation strictly
    /// greater than `dirty_since` touched only byte offsets in
    /// `dirty_lo..dirty_hi`. Consumers holding a generation `g >=
    /// dirty_since` can prove a range untouched since `g` by showing it
    /// disjoint from the window ([`untouched_since`]
    /// (Self::untouched_since)) — without this, a store-heavy loop forces
    /// the decoded-instruction cache to re-read every fetch after every
    /// store, because the generation alone is memory-wide.
    dirty_since: u64,
    /// First dirty byte offset (`u32::MAX` when the window is empty).
    dirty_lo: u32,
    /// One past the last dirty byte offset (0 when the window is empty).
    dirty_hi: u32,
}

/// Reset the dirty window once it covers this fraction of the memory
/// (expressed as a shift: window > size/2). A huge window proves nothing
/// for anybody; collapsing it re-arms the filter for consumers that
/// revalidate afterwards, at the cost of one word-compare for lines
/// validated before the reset.
const DIRTY_RESET_FRACTION_SHIFT: u32 = 1;

/// A memory access violation inside the private range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfRange {
    /// The faulting byte address.
    pub addr: u32,
    /// Transfer width in bytes.
    pub width: u32,
}

impl LocalMemory {
    /// Creates a zeroed memory of `size` bytes starting at `base`.
    pub fn new(base: u32, size: u32) -> Self {
        LocalMemory {
            base,
            bytes: vec![0; size as usize],
            gen: 0,
            dirty_since: 0,
            dirty_lo: u32::MAX,
            dirty_hi: 0,
        }
    }

    /// The current write generation (bumped on every mutation).
    #[inline]
    pub fn generation(&self) -> u64 {
        self.gen
    }

    /// Records a mutation of `width` bytes at offset `off`: bumps the
    /// generation and grows the dirty window.
    #[inline]
    fn mark_dirty(&mut self, off: usize, width: usize) {
        self.gen = self.gen.wrapping_add(1);
        self.dirty_lo = self.dirty_lo.min(off as u32);
        self.dirty_hi = self.dirty_hi.max((off + width) as u32);
        if (self.dirty_hi - self.dirty_lo) as usize > self.bytes.len() >> DIRTY_RESET_FRACTION_SHIFT
        {
            self.reset_dirty_window();
        }
    }

    /// Collapses the dirty window: from here on it only covers future
    /// mutations. Always safe (the invariant becomes vacuous); consumers
    /// holding generations older than the current one fall back to their
    /// slow-path revalidation once.
    pub fn reset_dirty_window(&mut self) {
        self.dirty_since = self.gen;
        self.dirty_lo = u32::MAX;
        self.dirty_hi = 0;
    }

    /// Whether the byte range `[addr, addr + width)` is provably untouched
    /// by every mutation performed after generation `since`.
    ///
    /// `false` means "unknown", not "touched": the proof only exists when
    /// `since` is at or after the window's base generation and the range
    /// avoids the window. Out-of-range addresses are never provable.
    #[inline]
    pub fn untouched_since(&self, since: u64, addr: u32, width: u32) -> bool {
        if since < self.dirty_since || !self.contains(addr, width) {
            return false;
        }
        let off = addr - self.base;
        off >= self.dirty_hi || off + width <= self.dirty_lo
    }

    /// First valid address.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Size in bytes.
    pub fn size(&self) -> u32 {
        self.bytes.len() as u32
    }

    /// Whether an access of `width` bytes at `addr` lies fully inside.
    #[inline]
    pub fn contains(&self, addr: u32, width: u32) -> bool {
        addr >= self.base
            && addr
                .checked_add(width)
                .is_some_and(|end| end - self.base <= self.bytes.len() as u32)
    }

    #[inline]
    fn index(&self, addr: u32, width: u32) -> Result<usize, OutOfRange> {
        if self.contains(addr, width) {
            Ok((addr - self.base) as usize)
        } else {
            Err(OutOfRange { addr, width })
        }
    }

    /// Reads a byte.
    pub fn read8(&self, addr: u32) -> Result<u8, OutOfRange> {
        Ok(self.bytes[self.index(addr, 1)?])
    }

    /// Reads a little-endian halfword.
    pub fn read16(&self, addr: u32) -> Result<u16, OutOfRange> {
        let i = self.index(addr, 2)?;
        Ok(u16::from_le_bytes([self.bytes[i], self.bytes[i + 1]]))
    }

    /// Reads a little-endian word.
    pub fn read32(&self, addr: u32) -> Result<u32, OutOfRange> {
        let i = self.index(addr, 4)?;
        Ok(u32::from_le_bytes([
            self.bytes[i],
            self.bytes[i + 1],
            self.bytes[i + 2],
            self.bytes[i + 3],
        ]))
    }

    /// Writes a byte.
    pub fn write8(&mut self, addr: u32, value: u8) -> Result<(), OutOfRange> {
        let i = self.index(addr, 1)?;
        self.mark_dirty(i, 1);
        self.bytes[i] = value;
        Ok(())
    }

    /// Writes a little-endian halfword.
    pub fn write16(&mut self, addr: u32, value: u16) -> Result<(), OutOfRange> {
        let i = self.index(addr, 2)?;
        self.mark_dirty(i, 2);
        self.bytes[i..i + 2].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Writes a little-endian word.
    pub fn write32(&mut self, addr: u32, value: u32) -> Result<(), OutOfRange> {
        let i = self.index(addr, 4)?;
        self.mark_dirty(i, 4);
        self.bytes[i..i + 4].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Copies a program image into memory at its base address, then
    /// collapses the dirty window: a fresh image invalidates everything
    /// anyway, and execution after a load should start with a re-armed
    /// filter.
    ///
    /// # Panics
    ///
    /// Panics if the image does not fit inside this memory.
    pub fn load_program(&mut self, program: &Program) {
        let bytes = program.to_bytes();
        let start = (program.base() - self.base) as usize;
        self.mark_dirty(start, bytes.len());
        self.bytes[start..start + bytes.len()].copy_from_slice(&bytes);
        self.reset_dirty_window();
    }

    /// Reads `len` bytes starting at `addr` (test/diagnostic helper).
    pub fn read_slice(&self, addr: u32, len: usize) -> Result<&[u8], OutOfRange> {
        let i = self.index(addr, len as u32)?;
        Ok(&self.bytes[i..i + len])
    }

    /// Writes a byte slice at `addr` (test/diagnostic helper).
    pub fn write_slice(&mut self, addr: u32, data: &[u8]) -> Result<(), OutOfRange> {
        let i = self.index(addr, data.len() as u32)?;
        self.mark_dirty(i, data.len());
        self.bytes[i..i + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Serializes the byte image *and* the write-generation / dirty-window
    /// counters. The counters matter: the decoded-instruction cache
    /// validates against them, so restoring them exactly keeps every
    /// generation-based proof valid after a snapshot round-trip.
    pub fn save_state(&self, w: &mut dmi_kernel::StateWriter) {
        w.put_u32(self.base);
        w.put_bytes(&self.bytes);
        w.put_u64(self.gen);
        w.put_u64(self.dirty_since);
        w.put_u32(self.dirty_lo);
        w.put_u32(self.dirty_hi);
    }

    /// Restores state written by [`LocalMemory::save_state`] onto a
    /// memory of the same geometry.
    pub fn load_state(
        &mut self,
        r: &mut dmi_kernel::StateReader<'_>,
    ) -> Result<(), dmi_kernel::SnapshotError> {
        use dmi_kernel::SnapshotError;
        let base = r.get_u32("local memory base")?;
        let bytes = r.get_bytes("local memory image")?;
        if base != self.base || bytes.len() != self.bytes.len() {
            return Err(SnapshotError::Mismatch {
                context: format!(
                    "local memory snapshot is {} bytes at {base:#x}, target is {} at {:#x}",
                    bytes.len(),
                    self.bytes.len(),
                    self.base
                ),
            });
        }
        self.bytes.copy_from_slice(bytes);
        self.gen = r.get_u64("local memory generation")?;
        self.dirty_since = r.get_u64("local memory dirty_since")?;
        self.dirty_lo = r.get_u32("local memory dirty_lo")?;
        self.dirty_hi = r.get_u32("local memory dirty_hi")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_all_widths() {
        let mut m = LocalMemory::new(0x1000, 0x100);
        m.write8(0x1000, 0xAB).unwrap();
        assert_eq!(m.read8(0x1000).unwrap(), 0xAB);
        m.write16(0x1002, 0xBEEF).unwrap();
        assert_eq!(m.read16(0x1002).unwrap(), 0xBEEF);
        m.write32(0x1004, 0xDEAD_BEEF).unwrap();
        assert_eq!(m.read32(0x1004).unwrap(), 0xDEAD_BEEF);
        // Little-endian byte order.
        assert_eq!(m.read8(0x1004).unwrap(), 0xEF);
        assert_eq!(m.read8(0x1007).unwrap(), 0xDE);
    }

    #[test]
    fn bounds_are_enforced() {
        let mut m = LocalMemory::new(0x1000, 0x10);
        assert!(m.read8(0xFFF).is_err());
        assert!(m.read32(0x100D).is_err(), "word straddles the end");
        assert!(m.read32(0x100C).is_ok(), "last aligned word is fine");
        assert!(m.write8(0x1010, 0).is_err());
        assert_eq!(
            m.read8(0x2000).unwrap_err(),
            OutOfRange {
                addr: 0x2000,
                width: 1
            }
        );
    }

    #[test]
    fn contains_handles_overflowing_addresses() {
        let m = LocalMemory::new(0, 0x10);
        assert!(!m.contains(u32::MAX, 4));
        assert!(m.contains(0xC, 4));
        assert!(!m.contains(0xD, 4));
    }

    #[test]
    fn loads_programs_at_base() {
        let mut a = dmi_isa::Asm::new();
        a.word(0x11223344).word(0x55667788);
        let p = a.assemble(0x20).unwrap();
        let mut m = LocalMemory::new(0, 0x100);
        m.load_program(&p);
        assert_eq!(m.read32(0x20).unwrap(), 0x11223344);
        assert_eq!(m.read32(0x24).unwrap(), 0x55667788);
    }

    #[test]
    fn generation_tracks_every_mutation() {
        let mut m = LocalMemory::new(0, 0x100);
        let g0 = m.generation();
        assert!(m.read32(0).is_ok());
        assert_eq!(m.generation(), g0, "reads do not move the generation");
        m.write8(0, 1).unwrap();
        m.write16(2, 2).unwrap();
        m.write32(4, 3).unwrap();
        m.write_slice(8, &[1, 2]).unwrap();
        assert_eq!(m.generation(), g0 + 4);
        // Failed writes leave the generation untouched.
        assert!(m.write32(0x1000, 0).is_err());
        assert_eq!(m.generation(), g0 + 4);
        let mut a = dmi_isa::Asm::new();
        a.word(1);
        m.load_program(&a.assemble(0).unwrap());
        assert_eq!(m.generation(), g0 + 5);
    }

    #[test]
    fn dirty_window_proves_disjoint_ranges_untouched() {
        let mut m = LocalMemory::new(0x1000, 0x100);
        let g0 = m.generation();
        // Nothing written yet: everything in range is untouched since g0.
        assert!(m.untouched_since(g0, 0x1000, 4));
        m.write32(0x1080, 1).unwrap();
        m.write8(0x1090, 2).unwrap();
        // The code at the bottom is provably untouched...
        assert!(m.untouched_since(g0, 0x1000, 4));
        assert!(m.untouched_since(g0, 0x107C, 4), "adjacent below");
        assert!(m.untouched_since(g0, 0x1091, 4), "adjacent above");
        // ...but the written window is not.
        assert!(!m.untouched_since(g0, 0x1080, 4));
        assert!(!m.untouched_since(g0, 0x108C, 8), "straddles the window");
        // The window is cumulative, not per-generation: even a current
        // generation cannot prove bytes inside it (conservative "unknown").
        let g1 = m.generation();
        assert!(!m.untouched_since(g1, 0x1080, 4));
        // Out-of-range is never provable.
        assert!(!m.untouched_since(g1, 0x2000, 4));
    }

    #[test]
    fn dirty_window_resets_are_conservative() {
        let mut m = LocalMemory::new(0, 0x100);
        let g0 = m.generation();
        m.write8(0x10, 1).unwrap();
        // An explicit reset forgets the proof for older generations…
        m.reset_dirty_window();
        assert!(!m.untouched_since(g0, 0x80, 4), "pre-reset gen: unknown");
        // …but re-arms the filter for generations taken at/after it.
        let g1 = m.generation();
        m.write8(0x10, 2).unwrap();
        assert!(m.untouched_since(g1, 0x80, 4));
        assert!(!m.untouched_since(g1, 0x10, 1));
    }

    #[test]
    fn dirty_window_collapses_when_it_covers_half_the_memory() {
        let mut m = LocalMemory::new(0, 0x100);
        let g0 = m.generation();
        // Writes at both extremes blow the window past size/2 → auto
        // reset; older generations lose the proof everywhere.
        m.write8(0x00, 1).unwrap();
        m.write8(0xF0, 2).unwrap();
        assert!(!m.untouched_since(g0, 0x80, 4));
        // Post-reset generations regain it.
        let g1 = m.generation();
        m.write8(0x20, 3).unwrap();
        assert!(m.untouched_since(g1, 0x80, 4));
    }

    #[test]
    fn load_program_rearms_the_dirty_window() {
        let mut m = LocalMemory::new(0, 0x100);
        let mut a = dmi_isa::Asm::new();
        a.word(1).word(2);
        m.load_program(&a.assemble(0).unwrap());
        let g = m.generation();
        m.write32(0x80, 7).unwrap();
        assert!(m.untouched_since(g, 0, 8), "code untouched by data store");
    }

    #[test]
    fn slice_helpers() {
        let mut m = LocalMemory::new(0, 0x20);
        m.write_slice(4, &[1, 2, 3]).unwrap();
        assert_eq!(m.read_slice(4, 3).unwrap(), &[1, 2, 3]);
        assert!(m.write_slice(0x1E, &[1, 2, 3]).is_err());
    }
}
