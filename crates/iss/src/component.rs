//! The ISS as a co-simulation component.
//!
//! `CpuComponent` wraps a [`CpuCore`] and advances it by one timing-model
//! cycle per rising clock edge. Instructions whose base cost is *k* cycles
//! occupy the CPU for *k* edges. External accesses drive the bus-master
//! handshake:
//!
//! ```text
//! edge n   : core stalls on external access -> req=1, addr/we/size/wdata driven
//! edge n+1…: bus arbitrates, slave executes (master holds req)
//! edge m   : master samples ack=1, captures rdata, drops req,
//!            and the stalled instruction completes in the same cycle
//! ```
//!
//! The slave-side mirror of this protocol lives in `dmi-interconnect`.

use std::any::Any;

use dmi_kernel::{Component, Ctx, Simulator, SnapshotError, StateReader, StateWriter, Wake, Wire};

use crate::bus::{ExtBus, ExtResult, ExtWidth};
use crate::cpu::{CpuCore, StepEvent};

/// The signal bundle of a bus master.
///
/// `req`, `we`, `size`, `addr` and `wdata` are outputs of the CPU; `ack`
/// and `rdata` are inputs driven by the interconnect.
#[derive(Debug, Clone, Copy)]
pub struct BusMasterPorts {
    /// Request strobe (1 bit, out). Held high until `ack` is observed.
    pub req: Wire,
    /// Write-enable (1 bit, out).
    pub we: Wire,
    /// Transfer size (2 bits, out): 0 byte, 1 half, 2 word.
    pub size: Wire,
    /// Byte address (32 bits, out).
    pub addr: Wire,
    /// Write data (32 bits, out).
    pub wdata: Wire,
    /// Acknowledge (1 bit, in): asserted for one cycle on completion.
    pub ack: Wire,
    /// Read data (32 bits, in): valid in the `ack` cycle.
    pub rdata: Wire,
}

impl BusMasterPorts {
    /// Declares the seven signals under `prefix` (e.g. `"cpu0.bus"`).
    pub fn declare(sim: &mut Simulator, prefix: &str) -> Self {
        BusMasterPorts {
            req: sim.wire(format!("{prefix}.req"), 1),
            we: sim.wire(format!("{prefix}.we"), 1),
            size: sim.wire(format!("{prefix}.size"), 2),
            addr: sim.wire(format!("{prefix}.addr"), 32),
            wdata: sim.wire(format!("{prefix}.wdata"), 32),
            ack: sim.wire(format!("{prefix}.ack"), 1),
            rdata: sim.wire(format!("{prefix}.rdata"), 32),
        }
    }
}

impl From<BusMasterPorts> for dmi_interconnect::MasterIf {
    /// The interconnect-side view of these ports: the same seven wires
    /// under the bus's field names (single source for the mapping, so
    /// adding a handshake signal cannot desynchronise wiring sites).
    fn from(p: BusMasterPorts) -> Self {
        dmi_interconnect::MasterIf {
            req: p.req,
            we: p.we,
            size: p.size,
            addr: p.addr,
            wdata: p.wdata,
            ack: p.ack,
            rdata: p.rdata,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PendingAccess {
    addr: u32,
    width: ExtWidth,
    we: bool,
    wdata: u32,
}

/// Adapter presenting the captured handshake state as an [`ExtBus`].
struct PortBus<'a> {
    pending: &'a mut Option<PendingAccess>,
    ready: &'a mut Option<(u32, u32)>,
}

impl ExtBus for PortBus<'_> {
    fn ext_read(&mut self, addr: u32, width: ExtWidth) -> ExtResult {
        if let Some((a, d)) = *self.ready {
            if a == addr {
                *self.ready = None;
                return ExtResult::Done(d);
            }
        }
        *self.pending = Some(PendingAccess {
            addr,
            width,
            we: false,
            wdata: 0,
        });
        ExtResult::Stall
    }

    fn ext_write(&mut self, addr: u32, value: u32, width: ExtWidth) -> ExtResult {
        if let Some((a, _)) = *self.ready {
            if a == addr {
                *self.ready = None;
                return ExtResult::Done(0);
            }
        }
        *self.pending = Some(PendingAccess {
            addr,
            width,
            we: true,
            wdata: value,
        });
        ExtResult::Stall
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Ready,
    WaitBus,
}

/// Co-simulation statistics of one CPU component.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpuComponentStats {
    /// Rising clock edges observed while not halted.
    pub active_cycles: u64,
    /// Edges spent waiting for the bus (stall cycles).
    pub bus_wait_cycles: u64,
    /// Bus transactions issued.
    pub transactions: u64,
}

/// Kernel component driving a [`CpuCore`] from a clock.
///
/// The component exposes a 1-bit `halted` output so a system monitor can
/// stop the simulation when every CPU has finished.
#[derive(Debug)]
pub struct CpuComponent {
    name: String,
    core: CpuCore,
    clk: Wire,
    ports: BusMasterPorts,
    halted_out: Wire,
    state: State,
    stall_budget: u64,
    pending: Option<PendingAccess>,
    ready: Option<(u32, u32)>,
    stats: CpuComponentStats,
    halted_driven: bool,
}

impl CpuComponent {
    /// Creates a component; subscribe it to `clk`'s rising edge.
    pub fn new(
        name: impl Into<String>,
        core: CpuCore,
        clk: Wire,
        ports: BusMasterPorts,
        halted_out: Wire,
    ) -> Self {
        CpuComponent {
            name: name.into(),
            core,
            clk,
            ports,
            halted_out,
            state: State::Ready,
            stall_budget: 0,
            pending: None,
            ready: None,
            stats: CpuComponentStats::default(),
            halted_driven: false,
        }
    }

    /// The wrapped core (registers, console, statistics).
    pub fn core(&self) -> &CpuCore {
        &self.core
    }

    /// Mutable access to the wrapped core (test setup between runs).
    pub fn core_mut(&mut self) -> &mut CpuCore {
        &mut self.core
    }

    /// Co-simulation statistics.
    pub fn stats(&self) -> CpuComponentStats {
        self.stats
    }

    fn step_core(&mut self, ctx: &mut Ctx<'_>) {
        let mut bus = PortBus {
            pending: &mut self.pending,
            ready: &mut self.ready,
        };
        match self.core.step(&mut bus) {
            StepEvent::Executed { cycles } => {
                self.stall_budget = cycles.saturating_sub(1);
                debug_assert!(self.ready.is_none(), "bus response not consumed");
            }
            StepEvent::Stalled => {
                let p = self.pending.take().expect("stall without pending access");
                ctx.write_bit(self.ports.req, true);
                ctx.write_bit(self.ports.we, p.we);
                ctx.write(self.ports.size, p.width.bits());
                ctx.write(self.ports.addr, p.addr as u64);
                ctx.write(self.ports.wdata, p.wdata as u64);
                self.pending = Some(p);
                self.state = State::WaitBus;
                self.stats.transactions += 1;
            }
            StepEvent::Halted => {
                if !self.halted_driven {
                    ctx.write_bit(self.halted_out, true);
                    self.halted_driven = true;
                }
            }
            StepEvent::Fault(f) => {
                ctx.stop_error(format!("{}: {}", self.name, f));
            }
        }
        // A halt executed this very step also needs the output driven.
        if self.core.is_halted() && !self.halted_driven {
            ctx.write_bit(self.halted_out, true);
            self.halted_driven = true;
        }
    }
}

impl Component for CpuComponent {
    fn name(&self) -> &str {
        &self.name
    }

    fn wake(&mut self, ctx: &mut Ctx<'_>) {
        match ctx.cause() {
            Wake::Start => {
                // Park all outputs at benign defaults.
                ctx.write_bit(self.ports.req, false);
                ctx.write_bit(self.ports.we, false);
                ctx.write(self.ports.size, 0);
                ctx.write(self.ports.addr, 0);
                ctx.write(self.ports.wdata, 0);
                ctx.write_bit(self.halted_out, false);
            }
            Wake::Signal(_) if ctx.is_signal(self.clk) => {
                if self.core.is_halted() {
                    return;
                }
                self.stats.active_cycles += 1;
                match self.state {
                    State::WaitBus => {
                        if ctx.read_bit(self.ports.ack) {
                            let p = self.pending.take().expect("ack without pending");
                            let data = ctx.read(self.ports.rdata) as u32;
                            self.ready = Some((p.addr, data));
                            ctx.write_bit(self.ports.req, false);
                            self.state = State::Ready;
                            // Complete the stalled instruction in this cycle.
                            self.step_core(ctx);
                        } else {
                            self.stats.bus_wait_cycles += 1;
                        }
                    }
                    State::Ready => {
                        if self.stall_budget > 0 {
                            self.stall_budget -= 1;
                        } else {
                            self.step_core(ctx);
                        }
                    }
                }
            }
            _ => {}
        }
    }

    fn save_state(&self, w: &mut StateWriter) {
        self.core.save_state(w);
        w.put_u8(match self.state {
            State::Ready => 0,
            State::WaitBus => 1,
        });
        w.put_u64(self.stall_budget);
        match &self.pending {
            None => w.put_bool(false),
            Some(p) => {
                w.put_bool(true);
                w.put_u32(p.addr);
                w.put_u8(match p.width {
                    ExtWidth::Byte => 0,
                    ExtWidth::Half => 1,
                    ExtWidth::Word => 2,
                });
                w.put_bool(p.we);
                w.put_u32(p.wdata);
            }
        }
        match self.ready {
            None => w.put_bool(false),
            Some((addr, data)) => {
                w.put_bool(true);
                w.put_u32(addr);
                w.put_u32(data);
            }
        }
        w.put_u64(self.stats.active_cycles);
        w.put_u64(self.stats.bus_wait_cycles);
        w.put_u64(self.stats.transactions);
        w.put_bool(self.halted_driven);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.core.load_state(r)?;
        self.state = match r.get_u8("cpu component state")? {
            0 => State::Ready,
            1 => State::WaitBus,
            t => {
                return Err(SnapshotError::Corrupt {
                    context: format!("unknown cpu component state tag {t}"),
                })
            }
        };
        self.stall_budget = r.get_u64("cpu stall_budget")?;
        self.pending = if r.get_bool("cpu pending flag")? {
            let addr = r.get_u32("pending addr")?;
            let width = match r.get_u8("pending width")? {
                0 => ExtWidth::Byte,
                1 => ExtWidth::Half,
                2 => ExtWidth::Word,
                t => {
                    return Err(SnapshotError::Corrupt {
                        context: format!("unknown ext width tag {t}"),
                    })
                }
            };
            let we = r.get_bool("pending we")?;
            let wdata = r.get_u32("pending wdata")?;
            Some(PendingAccess {
                addr,
                width,
                we,
                wdata,
            })
        } else {
            None
        };
        self.ready = if r.get_bool("cpu ready flag")? {
            Some((r.get_u32("ready addr")?, r.get_u32("ready data")?))
        } else {
            None
        };
        self.stats.active_cycles = r.get_u64("cpu stats.active_cycles")?;
        self.stats.bus_wait_cycles = r.get_u64("cpu stats.bus_wait_cycles")?;
        self.stats.transactions = r.get_u64("cpu stats.transactions")?;
        self.halted_driven = r.get_bool("cpu halted_driven")?;
        Ok(())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Stops the simulation once every watched `halted` wire is high.
///
/// Subscribe it to each CPU's halted output (rising edge).
#[derive(Debug)]
pub struct HaltMonitor {
    halted_wires: Vec<Wire>,
}

impl HaltMonitor {
    /// Creates a monitor over the given halted outputs.
    pub fn new(halted_wires: Vec<Wire>) -> Self {
        HaltMonitor { halted_wires }
    }
}

impl Component for HaltMonitor {
    fn name(&self) -> &str {
        "halt_monitor"
    }

    fn wake(&mut self, ctx: &mut Ctx<'_>) {
        if matches!(ctx.cause(), Wake::Signal(_))
            && self.halted_wires.iter().all(|&w| ctx.read_bit(w))
        {
            ctx.stop("all CPUs halted");
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
