//! Software-interrupt (SWI) services.
//!
//! The runtime environment offered to simulated programs is intentionally
//! tiny: halt, console output and introspection. Everything else — in
//! particular all dynamic shared-memory operations — goes through the
//! memory-mapped wrapper protocol, exactly as in the paper.

/// SWI numbers understood by the ISS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum Syscall {
    /// Stop this CPU; `r0` is the exit code.
    Halt = 0,
    /// Append the low byte of `r0` to the console.
    PutChar = 1,
    /// Return the CPU cycle counter: low half in `r0`, high half in `r1`.
    Cycles = 2,
    /// Append the signed decimal of `r0` and a newline to the console.
    PutInt = 3,
    /// Return this CPU's hardware id in `r0`.
    CpuId = 4,
}

impl Syscall {
    /// Decodes an SWI immediate.
    pub fn from_imm(imm: u16) -> Option<Syscall> {
        Some(match imm {
            0 => Syscall::Halt,
            1 => Syscall::PutChar,
            2 => Syscall::Cycles,
            3 => Syscall::PutInt,
            4 => Syscall::CpuId,
            _ => return None,
        })
    }
}

/// Captured console output of one CPU.
#[derive(Debug, Clone, Default)]
pub struct Console {
    bytes: Vec<u8>,
}

impl Console {
    /// Creates an empty console.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one byte.
    pub fn put(&mut self, byte: u8) {
        self.bytes.push(byte);
    }

    /// Appends text.
    pub fn put_str(&mut self, s: &str) {
        self.bytes.extend_from_slice(s.as_bytes());
    }

    /// Replaces the captured output wholesale (snapshot restore).
    pub fn restore_bytes(&mut self, bytes: Vec<u8>) {
        self.bytes = bytes;
    }

    /// The raw captured bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The output interpreted as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.bytes).into_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_known_numbers() {
        assert_eq!(Syscall::from_imm(0), Some(Syscall::Halt));
        assert_eq!(Syscall::from_imm(1), Some(Syscall::PutChar));
        assert_eq!(Syscall::from_imm(2), Some(Syscall::Cycles));
        assert_eq!(Syscall::from_imm(3), Some(Syscall::PutInt));
        assert_eq!(Syscall::from_imm(4), Some(Syscall::CpuId));
        assert_eq!(Syscall::from_imm(99), None);
    }

    #[test]
    fn console_collects_output() {
        let mut c = Console::new();
        c.put(b'h');
        c.put_str("i!");
        assert_eq!(c.bytes(), b"hi!");
        assert_eq!(c.text(), "hi!");
    }
}
