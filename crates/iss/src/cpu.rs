//! The SimARM CPU core: a cycle-approximate interpreter.
//!
//! `CpuCore` is deliberately kernel-independent: it executes one instruction
//! per [`CpuCore::step`] call against its private memory and an [`ExtBus`]
//! for everything outside it. The co-simulation component
//! ([`crate::CpuComponent`]) wraps a core and maps step results onto
//! simulated clock cycles; unit tests drive cores directly.
//!
//! ## Two dispatch engines
//!
//! The core carries two observably identical execution engines, selected at
//! run time with [`CpuCore::set_predecode`]:
//!
//! * the **reference interpreter** — the original word-at-a-time path:
//!   fetch, [`decode`] into the [`Instr`] AST, walk its nested operand/
//!   addressing-mode matches. Simple, obviously faithful, slow.
//! * the **predecoded engine** (default) — fetches through a per-core
//!   *decoded-instruction cache*: each line holds the [`MicroOp`] flattened
//!   form of one program word, so the hot loop replaces `decode` plus the
//!   nested match walk with one direct-mapped probe and one flat dispatch.
//!
//! Both engines charge identical cycles, update identical statistics and
//! raise identical faults; `tests/predecode_equivalence.rs` property-tests
//! that over the whole encodable instruction space.
//!
//! ## Decoded-instruction cache correctness
//!
//! A cache line is a *hint*, never an authority (the same discipline as the
//! pointer-table TLB in `dmi-core`). Each line records the raw instruction
//! word it was decoded from plus the [`LocalMemory`] write *generation* it
//! was last validated at:
//!
//! * generation unchanged → memory untouched since validation → the line is
//!   provably current and the fetch is skipped entirely;
//! * generation moved (any local write — data or code) → the line
//!   revalidates by refetching the word and comparing; a match refreshes
//!   the line, a mismatch (self-modifying code) re-decodes.
//!
//! A stale line can therefore cost a refetch, never a wrong execution, and
//! functional results are bit-identical with the cache on or off.
//!
//! ## External accesses and the retry protocol
//!
//! When an instruction touches the external window the core *attempts* the
//! access through the bus. If the bus answers [`ExtResult::Stall`], the core
//! returns [`StepEvent::Stalled`] **without committing any state** — the
//! program counter still points at the instruction. The caller re-invokes
//! `step` once the bus has a response ready; the instruction then re-executes
//! and completes. Because operands cannot change while the CPU is stalled,
//! the retry is exact. Only single-beat transfers may go external: block
//! transfers (LDM/STM) into the window fault, as the shared-memory API uses
//! scalar MMIO operations only.

use dmi_isa::{
    decode, predecode_word, AddrMode, DecodeError, DpOp, Instr, MemSize, MicroOp, MulOp,
    MultiMode, Offset, Operand2, Program, Reg, ShiftKind, UopKind, UopOffset,
};

use crate::bus::{ExtBus, ExtResult, ExtWidth};
use crate::flags::{add_with_carry, Flags};
use crate::localmem::LocalMemory;
use crate::syscall::{Console, Syscall};

/// Default state of the predecode engine, read once per core from the
/// `DMI_PREDECODE` environment variable (`"0"` or `"off"` selects the
/// reference interpreter). CI uses this to run the whole test suite on
/// both dispatch paths without code changes.
pub fn predecode_default() -> bool {
    match std::env::var("DMI_PREDECODE") {
        Ok(v) => !(v == "0" || v.eq_ignore_ascii_case("off")),
        Err(_) => true,
    }
}

/// Per-instruction-class base cycle costs of the timing model.
///
/// External accesses add the bus transaction latency on top of the base
/// cost, because the core retries the instruction when the bus answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleCosts {
    /// Data-processing (ALU) operations.
    pub alu: u64,
    /// 32-bit multiply (MUL/MLA).
    pub mul: u64,
    /// 64-bit multiply (UMULL/SMULL/UMLAL/SMLAL).
    pub mull: u64,
    /// Single load, local.
    pub load: u64,
    /// Single store, local.
    pub store: u64,
    /// Taken branch (including any write to `pc`).
    pub branch: u64,
    /// Block transfer base cost.
    pub ldm_base: u64,
    /// Block transfer per-register cost.
    pub ldm_per_reg: u64,
    /// Software interrupt.
    pub swi: u64,
    /// Condition-false (skipped) instruction.
    pub skipped: u64,
}

impl Default for CycleCosts {
    fn default() -> Self {
        CycleCosts {
            alu: 1,
            mul: 3,
            mull: 4,
            load: 2,
            store: 1,
            branch: 2,
            ldm_base: 1,
            ldm_per_reg: 1,
            swi: 3,
            skipped: 1,
        }
    }
}

/// An unrecoverable execution error. Faults are sticky: once raised, every
/// further `step` returns the same fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CpuFault {
    /// Instruction fetch outside private memory.
    FetchOutOfRange(u32),
    /// The fetched word is not a valid instruction.
    Undefined {
        /// Address of the word.
        addr: u32,
        /// The decode failure.
        err: DecodeError,
    },
    /// Data access outside private memory and below the external window.
    DataAbort {
        /// Faulting address.
        addr: u32,
    },
    /// Misaligned data access.
    Unaligned {
        /// Faulting address.
        addr: u32,
        /// Required alignment in bytes.
        align: u32,
    },
    /// The external bus reported no device at this address.
    ExternalFault {
        /// Faulting address.
        addr: u32,
    },
    /// Block transfer targeting the external window.
    ExternalBlockTransfer {
        /// Faulting address.
        addr: u32,
    },
    /// SWI with an unknown call number.
    UnknownSyscall(u16),
    /// `pc` used as the destination of an instruction that cannot branch.
    InvalidPcUse {
        /// Address of the instruction.
        addr: u32,
    },
}

impl std::fmt::Display for CpuFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CpuFault::FetchOutOfRange(a) => write!(f, "instruction fetch at {a:#010x} out of range"),
            CpuFault::Undefined { addr, err } => {
                write!(f, "undefined instruction at {addr:#010x}: {err}")
            }
            CpuFault::DataAbort { addr } => write!(f, "data abort at {addr:#010x}"),
            CpuFault::Unaligned { addr, align } => {
                write!(f, "unaligned {align}-byte access at {addr:#010x}")
            }
            CpuFault::ExternalFault { addr } => {
                write!(f, "external bus fault at {addr:#010x}")
            }
            CpuFault::ExternalBlockTransfer { addr } => {
                write!(f, "block transfer into external window at {addr:#010x}")
            }
            CpuFault::UnknownSyscall(n) => write!(f, "unknown syscall #{n}"),
            CpuFault::InvalidPcUse { addr } => {
                write!(f, "invalid pc destination at {addr:#010x}")
            }
        }
    }
}

impl std::error::Error for CpuFault {}

/// Writes a [`CpuFault`] as a variant tag plus its payload.
fn save_cpu_fault(w: &mut dmi_kernel::StateWriter, f: &CpuFault) {
    match f {
        CpuFault::FetchOutOfRange(addr) => {
            w.put_u8(0);
            w.put_u32(*addr);
        }
        CpuFault::Undefined { addr, err } => {
            w.put_u8(1);
            w.put_u32(*addr);
            let (tag, word) = match *err {
                DecodeError::ReservedBits(x) => (0u8, x),
                DecodeError::InvalidMulOp(x) => (1, x),
                DecodeError::InvalidMemSize(x) => (2, x),
                DecodeError::SignedStore(x) => (3, x),
                DecodeError::InvalidAddrMode(x) => (4, x),
                DecodeError::EmptyRegList(x) => (5, x),
                DecodeError::InvalidSysOp(x) => (6, x),
            };
            w.put_u8(tag);
            w.put_u32(word);
        }
        CpuFault::DataAbort { addr } => {
            w.put_u8(2);
            w.put_u32(*addr);
        }
        CpuFault::Unaligned { addr, align } => {
            w.put_u8(3);
            w.put_u32(*addr);
            w.put_u32(*align);
        }
        CpuFault::ExternalFault { addr } => {
            w.put_u8(4);
            w.put_u32(*addr);
        }
        CpuFault::ExternalBlockTransfer { addr } => {
            w.put_u8(5);
            w.put_u32(*addr);
        }
        CpuFault::UnknownSyscall(n) => {
            w.put_u8(6);
            w.put_u32(u32::from(*n));
        }
        CpuFault::InvalidPcUse { addr } => {
            w.put_u8(7);
            w.put_u32(*addr);
        }
    }
}

/// Reads back a [`CpuFault`] written by [`save_cpu_fault`].
fn load_cpu_fault(
    r: &mut dmi_kernel::StateReader<'_>,
) -> Result<CpuFault, dmi_kernel::SnapshotError> {
    let tag = r.get_u8("cpu fault tag")?;
    Ok(match tag {
        0 => CpuFault::FetchOutOfRange(r.get_u32("fault addr")?),
        1 => {
            let addr = r.get_u32("fault addr")?;
            let etag = r.get_u8("decode error tag")?;
            let word = r.get_u32("decode error word")?;
            let err = match etag {
                0 => DecodeError::ReservedBits(word),
                1 => DecodeError::InvalidMulOp(word),
                2 => DecodeError::InvalidMemSize(word),
                3 => DecodeError::SignedStore(word),
                4 => DecodeError::InvalidAddrMode(word),
                5 => DecodeError::EmptyRegList(word),
                6 => DecodeError::InvalidSysOp(word),
                _ => {
                    return Err(dmi_kernel::SnapshotError::Corrupt {
                        context: format!("unknown decode error tag {etag}"),
                    })
                }
            };
            CpuFault::Undefined { addr, err }
        }
        2 => CpuFault::DataAbort {
            addr: r.get_u32("fault addr")?,
        },
        3 => CpuFault::Unaligned {
            addr: r.get_u32("fault addr")?,
            align: r.get_u32("fault align")?,
        },
        4 => CpuFault::ExternalFault {
            addr: r.get_u32("fault addr")?,
        },
        5 => CpuFault::ExternalBlockTransfer {
            addr: r.get_u32("fault addr")?,
        },
        6 => {
            let n = r.get_u32("fault syscall")?;
            let n = u16::try_from(n).map_err(|_| dmi_kernel::SnapshotError::Corrupt {
                context: format!("syscall number {n} out of range"),
            })?;
            CpuFault::UnknownSyscall(n)
        }
        7 => CpuFault::InvalidPcUse {
            addr: r.get_u32("fault addr")?,
        },
        _ => {
            return Err(dmi_kernel::SnapshotError::Corrupt {
                context: format!("unknown cpu fault tag {tag}"),
            })
        }
    })
}

/// Result of one `step` call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepEvent {
    /// The instruction committed, consuming this many cycles.
    Executed {
        /// Base cycle cost charged by the timing model.
        cycles: u64,
    },
    /// An external access is in flight; nothing committed. Retry later.
    Stalled,
    /// The CPU has halted (idempotent).
    Halted,
    /// A sticky fault (idempotent).
    Fault(CpuFault),
}

/// Execution statistics of one core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpuStats {
    /// Committed instructions.
    pub instructions: u64,
    /// Committed loads (any width, local or external).
    pub loads: u64,
    /// Committed stores.
    pub stores: u64,
    /// Completed external reads.
    pub ext_reads: u64,
    /// Completed external writes.
    pub ext_writes: u64,
    /// Taken branches (including pc writes).
    pub branches: u64,
    /// Executed software interrupts.
    pub swis: u64,
    /// Instructions skipped by a false condition.
    pub cond_skipped: u64,
    /// Fetches served by the decoded-instruction cache (predecode engine
    /// only; zero on the reference path).
    pub icache_hits: u64,
    /// Fetches that decoded and filled a cache line (predecode engine
    /// only).
    pub icache_misses: u64,
}

impl CpuStats {
    /// Decoded-instruction-cache hit rate (0.0 when no cached fetches were
    /// served, e.g. on the reference path).
    pub fn icache_hit_rate(&self) -> f64 {
        let total = self.icache_hits + self.icache_misses;
        if total == 0 {
            0.0
        } else {
            self.icache_hits as f64 / total as f64
        }
    }
}

/// Sentinel tag marking an unused cache line (no valid word index reaches
/// it: indices are bounded by `local size / 4` < 2^30).
const IC_EMPTY: u32 = u32::MAX;

/// Cache lines for the smallest memories (power of two).
const IC_MIN_LINES: usize = 64;

/// Line-count cap: 16k lines cover a 64 KiB code working set — far beyond
/// the workloads here — while keeping the cache ~0.5 MiB per core.
const IC_MAX_LINES: usize = 1 << 14;

#[derive(Debug, Clone, Copy)]
struct IcLine {
    /// Word index (`(pc - base) / 4`) this line describes; [`IC_EMPTY`]
    /// when unused.
    tag: u32,
    /// Raw instruction word the micro-op was decoded from.
    word: u32,
    /// Local-memory generation the line was last validated at.
    gen: u64,
    /// The predecoded operation.
    op: MicroOp,
}

const IC_EMPTY_LINE: IcLine = IcLine {
    tag: IC_EMPTY,
    word: 0,
    gen: 0,
    op: MicroOp {
        cond: dmi_isa::Cond::Nv,
        kind: UopKind::Nop,
    },
};

/// The decoded-instruction cache: direct-mapped over word indices.
#[derive(Debug)]
struct ICache {
    lines: Box<[IcLine]>,
    /// Addressable instruction words in local memory (`size / 4`); word
    /// indices at or above this cannot be fetched as a full word.
    words: u32,
    /// Predicted next fetch: after a lookup at `pc`, the sequential
    /// successor `(pc + 4, widx + 1)`. A matching prediction skips the
    /// range/alignment computation of the full lookup (the fused
    /// fetch+predecode fast path).
    fused_pc: u32,
    fused_widx: u32,
}

impl ICache {
    fn new(mem_size: u32) -> Self {
        let words = mem_size / 4;
        let len = (words as usize)
            .next_power_of_two()
            .clamp(IC_MIN_LINES, IC_MAX_LINES);
        ICache {
            lines: vec![IC_EMPTY_LINE; len].into_boxed_slice(),
            words,
            fused_pc: 0,
            // `fused_widx >= words` never matches, so the predictor starts
            // cold without a separate validity flag.
            fused_widx: u32::MAX,
        }
    }

    #[inline]
    fn slot(&self, widx: u32) -> usize {
        (widx as usize) & (self.lines.len() - 1)
    }

    /// Records the sequential successor of a completed lookup.
    #[inline]
    fn predict(&mut self, pc: u32, widx: u32) {
        self.fused_pc = pc.wrapping_add(4);
        self.fused_widx = widx + 1; // >= words naturally invalidates
    }
}

/// The CPU core state and interpreter.
#[derive(Debug)]
pub struct CpuCore {
    id: u32,
    regs: [u32; 16],
    flags: Flags,
    local: LocalMemory,
    ext_base: u32,
    costs: CycleCosts,
    halted: bool,
    exit_code: u32,
    cycles: u64,
    console: Console,
    stats: CpuStats,
    fault: Option<CpuFault>,
    icache: ICache,
    predecode: bool,
}

impl CpuCore {
    /// Default start of the external (shared) window.
    pub const DEFAULT_EXT_BASE: u32 = 0x8000_0000;

    /// Creates a core with the given hardware id and private memory.
    /// `sp` starts at the top of private memory; `pc` at its base.
    pub fn new(id: u32, local: LocalMemory) -> Self {
        let sp = local.base() + local.size();
        let pc = local.base();
        let mut regs = [0u32; 16];
        regs[13] = sp;
        regs[15] = pc;
        let icache = ICache::new(local.size());
        CpuCore {
            id,
            regs,
            flags: Flags::default(),
            local,
            ext_base: Self::DEFAULT_EXT_BASE,
            costs: CycleCosts::default(),
            halted: false,
            exit_code: 0,
            cycles: 0,
            console: Console::new(),
            stats: CpuStats::default(),
            fault: None,
            icache,
            predecode: predecode_default(),
        }
    }

    /// Overrides the external-window base address.
    pub fn set_ext_base(&mut self, base: u32) {
        self.ext_base = base;
    }

    /// Overrides the timing model.
    pub fn set_costs(&mut self, costs: CycleCosts) {
        self.costs = costs;
    }

    /// Selects the dispatch engine: predecoded micro-ops with the
    /// decoded-instruction cache (`true`, the default) or the reference
    /// word-at-a-time interpreter (`false`). Both are observably
    /// identical; the switch exists for A/B measurement and differential
    /// testing.
    pub fn set_predecode(&mut self, on: bool) {
        self.predecode = on;
    }

    /// Which dispatch engine is active.
    pub fn predecode_enabled(&self) -> bool {
        self.predecode
    }

    /// Loads a program into private memory and jumps to its base.
    pub fn load_program(&mut self, program: &Program) {
        self.local.load_program(program);
        self.regs[15] = program.base();
    }

    /// The hardware id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Reads a register (raw value; no pc adjustment).
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index() as usize]
    }

    /// Writes a register.
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        self.regs[r.index() as usize] = value;
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.regs[15]
    }

    /// Jumps to an address.
    pub fn set_pc(&mut self, pc: u32) {
        self.regs[15] = pc;
    }

    /// The condition flags.
    pub fn flags(&self) -> Flags {
        self.flags
    }

    /// Overwrites the NZCV flags (test setup, e.g. differential harnesses
    /// that must start both engines from an arbitrary flag state).
    pub fn set_flags(&mut self, flags: Flags) {
        self.flags = flags;
    }

    /// Whether the core has executed a halt.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Exit code passed to the halt syscall (`r0`).
    pub fn exit_code(&self) -> u32 {
        self.exit_code
    }

    /// Cycles consumed so far under the timing model.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Execution statistics.
    pub fn stats(&self) -> CpuStats {
        self.stats
    }

    /// Console output captured from SWI services.
    pub fn console(&self) -> &Console {
        &self.console
    }

    /// The sticky fault, if any.
    pub fn fault(&self) -> Option<&CpuFault> {
        self.fault.as_ref()
    }

    /// Private memory (diagnostics and loaders).
    pub fn local(&self) -> &LocalMemory {
        &self.local
    }

    /// Mutable private memory (test setup). Safe with the decoded-
    /// instruction cache: every mutation moves the memory's write
    /// generation, which forces cache lines to revalidate.
    pub fn local_mut(&mut self) -> &mut LocalMemory {
        &mut self.local
    }

    /// Serializes the architectural and accounting state: registers,
    /// flags, private memory (including its write generations), halt
    /// state, cycle counter, console output, statistics and any sticky
    /// fault. The decoded-instruction cache is *not* serialized — it is
    /// a validated cache rebuilt lazily after restore, so
    /// `icache_hits`/`icache_misses` legitimately diverge between a
    /// restored and a continuous run while every architectural effect
    /// stays bit-identical.
    pub fn save_state(&self, w: &mut dmi_kernel::StateWriter) {
        for r in &self.regs {
            w.put_u32(*r);
        }
        w.put_bool(self.flags.n);
        w.put_bool(self.flags.z);
        w.put_bool(self.flags.c);
        w.put_bool(self.flags.v);
        self.local.save_state(w);
        w.put_bool(self.halted);
        w.put_u32(self.exit_code);
        w.put_u64(self.cycles);
        w.put_bytes(self.console.bytes());
        w.put_u64(self.stats.instructions);
        w.put_u64(self.stats.loads);
        w.put_u64(self.stats.stores);
        w.put_u64(self.stats.ext_reads);
        w.put_u64(self.stats.ext_writes);
        w.put_u64(self.stats.branches);
        w.put_u64(self.stats.swis);
        w.put_u64(self.stats.cond_skipped);
        w.put_u64(self.stats.icache_hits);
        w.put_u64(self.stats.icache_misses);
        match &self.fault {
            None => w.put_bool(false),
            Some(f) => {
                w.put_bool(true);
                save_cpu_fault(w, f);
            }
        }
    }

    /// Restores state written by [`CpuCore::save_state`] onto a core
    /// with the same memory geometry, resetting the decoded-instruction
    /// cache cold.
    pub fn load_state(
        &mut self,
        r: &mut dmi_kernel::StateReader<'_>,
    ) -> Result<(), dmi_kernel::SnapshotError> {
        for reg in &mut self.regs {
            *reg = r.get_u32("cpu register")?;
        }
        self.flags.n = r.get_bool("cpu flag n")?;
        self.flags.z = r.get_bool("cpu flag z")?;
        self.flags.c = r.get_bool("cpu flag c")?;
        self.flags.v = r.get_bool("cpu flag v")?;
        self.local.load_state(r)?;
        self.halted = r.get_bool("cpu halted")?;
        self.exit_code = r.get_u32("cpu exit_code")?;
        self.cycles = r.get_u64("cpu cycles")?;
        self.console
            .restore_bytes(r.get_bytes("cpu console")?.to_vec());
        self.stats.instructions = r.get_u64("cpu stats.instructions")?;
        self.stats.loads = r.get_u64("cpu stats.loads")?;
        self.stats.stores = r.get_u64("cpu stats.stores")?;
        self.stats.ext_reads = r.get_u64("cpu stats.ext_reads")?;
        self.stats.ext_writes = r.get_u64("cpu stats.ext_writes")?;
        self.stats.branches = r.get_u64("cpu stats.branches")?;
        self.stats.swis = r.get_u64("cpu stats.swis")?;
        self.stats.cond_skipped = r.get_u64("cpu stats.cond_skipped")?;
        self.stats.icache_hits = r.get_u64("cpu stats.icache_hits")?;
        self.stats.icache_misses = r.get_u64("cpu stats.icache_misses")?;
        self.fault = if r.get_bool("cpu fault flag")? {
            Some(load_cpu_fault(r)?)
        } else {
            None
        };
        self.icache = ICache::new(self.local.size());
        Ok(())
    }

    #[inline]
    fn is_external(&self, addr: u32) -> bool {
        addr >= self.ext_base
    }

    /// Register read with pc-relative semantics: `pc` reads as the address
    /// of the current instruction plus 8.
    #[inline]
    fn read_op(&self, r: Reg) -> u32 {
        if r.is_pc() {
            self.regs[15].wrapping_add(8)
        } else {
            self.regs[r.index() as usize]
        }
    }

    fn raise(&mut self, fault: CpuFault) -> StepEvent {
        self.fault = Some(fault.clone());
        StepEvent::Fault(fault)
    }

    fn done(&mut self, cycles: u64) -> StepEvent {
        self.cycles += cycles;
        self.stats.instructions += 1;
        StepEvent::Executed { cycles }
    }

    #[inline]
    fn advance(&mut self) {
        self.regs[15] = self.regs[15].wrapping_add(4);
    }

    /// Barrel shift of a register value by a constant amount (the
    /// `Operand2::Reg` path), returning value and carry-out.
    #[inline]
    fn shift_reg(&self, rm: Reg, shift: ShiftKind, amount: u8) -> (u32, Option<bool>) {
        let v = self.read_op(rm);
        if amount == 0 {
            return (v, None);
        }
        let a = amount as u32;
        match shift {
            ShiftKind::Lsl => (v << a, Some(v & (1 << (32 - a)) != 0)),
            ShiftKind::Lsr => (v >> a, Some(v & (1 << (a - 1)) != 0)),
            ShiftKind::Asr => (((v as i32) >> a) as u32, Some(v & (1 << (a - 1)) != 0)),
            ShiftKind::Ror => (v.rotate_right(a), Some(v & (1 << (a - 1)) != 0)),
        }
    }

    /// Computes the barrel-shifter output and its carry-out (when defined).
    fn shifter(&self, op2: Operand2) -> (u32, Option<bool>) {
        match op2 {
            Operand2::Imm { imm8, rot } => {
                let v = (imm8 as u32).rotate_right(rot as u32 * 2);
                let carry = if rot != 0 {
                    Some(v & 0x8000_0000 != 0)
                } else {
                    None
                };
                (v, carry)
            }
            Operand2::Reg { rm, shift, amount } => self.shift_reg(rm, shift, amount),
        }
    }

    /// Executes one instruction. See the module docs for the stall/retry
    /// contract on external accesses and the dispatch-engine selection.
    pub fn step(&mut self, ext: &mut dyn ExtBus) -> StepEvent {
        if let Some(f) = &self.fault {
            return StepEvent::Fault(f.clone());
        }
        if self.halted {
            return StepEvent::Halted;
        }
        if self.predecode {
            self.step_predecoded(ext)
        } else {
            self.step_reference(ext)
        }
    }

    /// The predecoded engine: fetch through the decoded-instruction cache,
    /// dispatch one flat match over the micro-op.
    fn step_predecoded(&mut self, ext: &mut dyn ExtBus) -> StepEvent {
        let pc = self.regs[15];
        let gen = self.local.generation();

        // Resolve the cacheable word index: the fused fast path reuses the
        // successor predicted by the previous fetch; otherwise derive it
        // from scratch (and bypass the cache for unaligned or out-of-range
        // program counters, which mirror the reference fetch exactly).
        let widx = if pc == self.icache.fused_pc && self.icache.fused_widx < self.icache.words {
            self.icache.fused_widx
        } else {
            let off = pc.wrapping_sub(self.local.base());
            let size = self.local.size();
            if off & 3 == 0 && off < size && size - off >= 4 {
                off >> 2
            } else {
                // Not cacheable: fetch and predecode in place.
                let word = match self.local.read32(pc) {
                    Ok(w) => w,
                    Err(_) => return self.raise(CpuFault::FetchOutOfRange(pc)),
                };
                let op = match predecode_word(word) {
                    Ok(op) => op,
                    Err(err) => return self.raise(CpuFault::Undefined { addr: pc, err }),
                };
                return self.exec_uop(ext, op);
            }
        };

        let slot = self.icache.slot(widx);
        let line = self.icache.lines[slot];
        if line.tag == widx {
            if line.gen == gen {
                // Memory untouched since validation: the line is provably
                // current — skip the fetch entirely.
                self.stats.icache_hits += 1;
                self.icache.predict(pc, widx);
                return self.exec_uop(ext, line.op);
            }
            // Generation moved: if the memory's dirty window proves no
            // write since validation touched this word, the line is
            // current without a fetch — the fast path store-heavy loops
            // stay on (stores land in data, fetches in code). Otherwise
            // revalidate against the live word (self-modifying-code
            // safety — see the module docs).
            if self.local.untouched_since(line.gen, pc, 4) {
                self.icache.lines[slot].gen = gen;
                self.stats.icache_hits += 1;
                self.icache.predict(pc, widx);
                return self.exec_uop(ext, line.op);
            }
            let word = self.local.read32(pc).expect("cacheable range");
            if line.word == word {
                self.icache.lines[slot].gen = gen;
                self.stats.icache_hits += 1;
                self.icache.predict(pc, widx);
                return self.exec_uop(ext, line.op);
            }
        }

        // Miss: fetch, predecode, fill.
        self.stats.icache_misses += 1;
        let word = self.local.read32(pc).expect("cacheable range");
        let op = match predecode_word(word) {
            Ok(op) => op,
            Err(err) => return self.raise(CpuFault::Undefined { addr: pc, err }),
        };
        self.icache.lines[slot] = IcLine {
            tag: widx,
            word,
            gen,
            op,
        };
        self.icache.predict(pc, widx);
        self.exec_uop(ext, op)
    }

    /// Executes one predecoded micro-op: one condition check, one flat
    /// dispatch. Hot arms (ALU, branch, load/store) lead.
    fn exec_uop(&mut self, ext: &mut dyn ExtBus, uop: MicroOp) -> StepEvent {
        if !self.flags.check(uop.cond) {
            self.stats.cond_skipped += 1;
            self.advance();
            return self.done(self.costs.skipped);
        }
        match uop.kind {
            UopKind::AluImm {
                op, s, rd, rn, imm, carry,
            } => self.exec_alu(op, s, rd, rn, imm, carry),
            UopKind::AluReg {
                op, s, rd, rn, rm, shift, amount,
            } => {
                let (op2v, carry) = self.shift_reg(rm, shift, amount);
                self.exec_alu(op, s, rd, rn, op2v, carry)
            }
            UopKind::Branch { link, delta } => {
                let target = self.regs[15].wrapping_add(delta);
                if link {
                    self.regs[14] = self.regs[15].wrapping_add(4);
                }
                self.regs[15] = target;
                self.stats.branches += 1;
                self.done(self.costs.branch)
            }
            UopKind::Load {
                size, rd, rn, offset, writeback, post,
            } => {
                let rnv = self.read_op(rn);
                let indexed = rnv.wrapping_add(self.offset_value(offset));
                let addr = if post { rnv } else { indexed };
                self.exec_ldst_at(ext, true, size, rd, rn, indexed, addr, writeback)
            }
            UopKind::Store {
                size, rd, rn, offset, writeback, post,
            } => {
                let rnv = self.read_op(rn);
                let indexed = rnv.wrapping_add(self.offset_value(offset));
                let addr = if post { rnv } else { indexed };
                self.exec_ldst_at(ext, false, size, rd, rn, indexed, addr, writeback)
            }
            UopKind::Mul32 {
                acc, s, rd, rn, rs, rm,
            } => {
                let mut r = self.read_op(rm).wrapping_mul(self.read_op(rs));
                if acc {
                    r = r.wrapping_add(self.read_op(rn));
                }
                self.regs[rd.index() as usize] = r;
                if s {
                    self.flags.set_nz(r);
                }
                self.advance();
                self.done(self.costs.mul)
            }
            UopKind::Mul64 {
                signed, acc, s, rd, rn, rs, rm,
            } => {
                let rmv = self.read_op(rm);
                let rsv = self.read_op(rs);
                let product = if signed {
                    ((rmv as i32 as i64).wrapping_mul(rsv as i32 as i64)) as u64
                } else {
                    (rmv as u64).wrapping_mul(rsv as u64)
                };
                let a = if acc {
                    ((self.regs[rd.index() as usize] as u64) << 32)
                        | self.regs[rn.index() as usize] as u64
                } else {
                    0
                };
                let r = product.wrapping_add(a);
                self.regs[rn.index() as usize] = r as u32; // low
                self.regs[rd.index() as usize] = (r >> 32) as u32; // high
                if s {
                    self.flags.set_nz64(r);
                }
                self.advance();
                self.done(self.costs.mull)
            }
            UopKind::BranchReg { link, rm } => {
                let target = self.read_op(rm) & !3;
                if link {
                    self.regs[14] = self.regs[15].wrapping_add(4);
                }
                self.regs[15] = target;
                self.stats.branches += 1;
                self.done(self.costs.branch)
            }
            UopKind::LoadMulti {
                rn, list, writeback, db,
            } => self.exec_ldstm_flat(true, db, writeback, rn, list),
            UopKind::StoreMulti {
                rn, list, writeback, db,
            } => self.exec_ldstm_flat(false, db, writeback, rn, list),
            UopKind::MovImm16 { top, rd, imm } => {
                let old = self.regs[rd.index() as usize];
                self.regs[rd.index() as usize] = if top {
                    (old & 0x0000_FFFF) | ((imm as u32) << 16)
                } else {
                    imm as u32
                };
                self.advance();
                self.done(self.costs.alu)
            }
            UopKind::Clz { rd, rm } => {
                let v = self.read_op(rm).leading_zeros();
                self.regs[rd.index() as usize] = v;
                self.advance();
                self.done(self.costs.alu)
            }
            UopKind::Swi { imm } => self.exec_swi(imm),
            UopKind::Nop => {
                self.advance();
                self.done(self.costs.alu)
            }
            UopKind::PcFault => {
                let pc = self.regs[15];
                self.raise(CpuFault::InvalidPcUse { addr: pc })
            }
        }
    }

    #[inline]
    fn offset_value(&self, offset: UopOffset) -> u32 {
        match offset {
            UopOffset::Imm(v) => v,
            UopOffset::RegAdd(rm) => self.read_op(rm),
            UopOffset::RegSub(rm) => self.read_op(rm).wrapping_neg(),
        }
    }

    /// The reference engine: the original fetch → [`decode`] → nested-match
    /// interpreter, kept verbatim as the behavioural oracle for the
    /// predecoded path (and selectable at run time for A/B measurement).
    fn step_reference(&mut self, ext: &mut dyn ExtBus) -> StepEvent {
        let pc = self.regs[15];
        let word = match self.local.read32(pc) {
            Ok(w) => w,
            Err(_) => return self.raise(CpuFault::FetchOutOfRange(pc)),
        };
        let instr = match decode(word) {
            Ok(i) => i,
            Err(err) => return self.raise(CpuFault::Undefined { addr: pc, err }),
        };
        if !self.flags.check(instr.cond()) {
            self.stats.cond_skipped += 1;
            self.advance();
            return self.done(self.costs.skipped);
        }
        match instr {
            Instr::Dp {
                op, s, rd, rn, op2, ..
            } => self.exec_dp(op, s, rd, rn, op2),
            Instr::Mul {
                op, s, rd, rn, rs, rm, ..
            } => self.exec_mul(op, s, rd, rn, rs, rm),
            Instr::LdSt {
                load,
                size,
                rd,
                rn,
                offset,
                up,
                mode,
                ..
            } => self.exec_ldst(ext, load, size, rd, rn, offset, up, mode),
            Instr::LdStM {
                load,
                mode,
                writeback,
                rn,
                list,
                ..
            } => self.exec_ldstm(load, mode, writeback, rn, list),
            Instr::Branch { link, offset, .. } => {
                let target = self
                    .regs[15]
                    .wrapping_add(8)
                    .wrapping_add((offset as u32).wrapping_mul(4));
                if link {
                    self.regs[14] = self.regs[15].wrapping_add(4);
                }
                self.regs[15] = target;
                self.stats.branches += 1;
                self.done(self.costs.branch)
            }
            Instr::Bx { link, rm, .. } => {
                let target = self.read_op(rm) & !3;
                if link {
                    self.regs[14] = self.regs[15].wrapping_add(4);
                }
                self.regs[15] = target;
                self.stats.branches += 1;
                self.done(self.costs.branch)
            }
            Instr::Swi { imm, .. } => self.exec_swi(imm),
            Instr::Nop { .. } => {
                self.advance();
                self.done(self.costs.alu)
            }
            Instr::Clz { rd, rm, .. } => {
                if rd.is_pc() {
                    return self.raise(CpuFault::InvalidPcUse { addr: pc });
                }
                let v = self.read_op(rm).leading_zeros();
                self.regs[rd.index() as usize] = v;
                self.advance();
                self.done(self.costs.alu)
            }
            Instr::MovW { top, rd, imm, .. } => {
                if rd.is_pc() {
                    return self.raise(CpuFault::InvalidPcUse { addr: pc });
                }
                let old = self.regs[rd.index() as usize];
                self.regs[rd.index() as usize] = if top {
                    (old & 0x0000_FFFF) | ((imm as u32) << 16)
                } else {
                    imm as u32
                };
                self.advance();
                self.done(self.costs.alu)
            }
        }
    }

    /// ALU execution from a resolved operand-2 value (shared by both
    /// engines; the predecoded path arrives here with the shifter already
    /// folded away for immediates).
    fn exec_alu(
        &mut self,
        op: DpOp,
        s: bool,
        rd: Reg,
        rn: Reg,
        op2v: u32,
        shifter_carry: Option<bool>,
    ) -> StepEvent {
        let rnv = self.read_op(rn);
        let c_in = self.flags.c;

        // (result, arithmetic carry/overflow if any)
        let (result, arith): (u32, Option<(bool, bool)>) = match op {
            DpOp::And | DpOp::Tst => (rnv & op2v, None),
            DpOp::Eor | DpOp::Teq => (rnv ^ op2v, None),
            DpOp::Sub | DpOp::Cmp => {
                let (r, c, v) = add_with_carry(rnv, !op2v, true);
                (r, Some((c, v)))
            }
            DpOp::Rsb => {
                let (r, c, v) = add_with_carry(op2v, !rnv, true);
                (r, Some((c, v)))
            }
            DpOp::Add | DpOp::Cmn => {
                let (r, c, v) = add_with_carry(rnv, op2v, false);
                (r, Some((c, v)))
            }
            DpOp::Adc => {
                let (r, c, v) = add_with_carry(rnv, op2v, c_in);
                (r, Some((c, v)))
            }
            DpOp::Sbc => {
                let (r, c, v) = add_with_carry(rnv, !op2v, c_in);
                (r, Some((c, v)))
            }
            DpOp::Rsc => {
                let (r, c, v) = add_with_carry(op2v, !rnv, c_in);
                (r, Some((c, v)))
            }
            DpOp::Orr => (rnv | op2v, None),
            DpOp::Mov => (op2v, None),
            DpOp::Bic => (rnv & !op2v, None),
            DpOp::Mvn => (!op2v, None),
        };

        // Compares always update flags; other ops only with S.
        if s || op.is_compare() {
            self.flags.set_nz(result);
            match arith {
                Some((c, v)) => {
                    self.flags.c = c;
                    self.flags.v = v;
                }
                None => {
                    if let Some(c) = shifter_carry {
                        self.flags.c = c;
                    }
                }
            }
        }

        if op.is_compare() {
            self.advance();
            return self.done(self.costs.alu);
        }
        if rd.is_pc() {
            self.regs[15] = result & !3;
            self.stats.branches += 1;
            return self.done(self.costs.branch);
        }
        self.regs[rd.index() as usize] = result;
        self.advance();
        self.done(self.costs.alu)
    }

    fn exec_dp(&mut self, op: DpOp, s: bool, rd: Reg, rn: Reg, op2: Operand2) -> StepEvent {
        let (op2v, shifter_carry) = self.shifter(op2);
        self.exec_alu(op, s, rd, rn, op2v, shifter_carry)
    }

    fn exec_mul(&mut self, op: MulOp, s: bool, rd: Reg, rn: Reg, rs: Reg, rm: Reg) -> StepEvent {
        let pc = self.regs[15];
        if rd.is_pc() || (op.is_long() && rn.is_pc()) || (op == MulOp::Mla && rn.is_pc()) {
            return self.raise(CpuFault::InvalidPcUse { addr: pc });
        }
        let rmv = self.read_op(rm);
        let rsv = self.read_op(rs);
        match op {
            MulOp::Mul | MulOp::Mla => {
                let mut r = rmv.wrapping_mul(rsv);
                if op == MulOp::Mla {
                    r = r.wrapping_add(self.read_op(rn));
                }
                self.regs[rd.index() as usize] = r;
                if s {
                    self.flags.set_nz(r);
                }
                self.advance();
                self.done(self.costs.mul)
            }
            MulOp::Umull | MulOp::Umlal | MulOp::Smull | MulOp::Smlal => {
                let product = match op {
                    MulOp::Umull | MulOp::Umlal => (rmv as u64).wrapping_mul(rsv as u64),
                    _ => ((rmv as i32 as i64).wrapping_mul(rsv as i32 as i64)) as u64,
                };
                let acc = if matches!(op, MulOp::Umlal | MulOp::Smlal) {
                    ((self.regs[rd.index() as usize] as u64) << 32)
                        | self.regs[rn.index() as usize] as u64
                } else {
                    0
                };
                let r = product.wrapping_add(acc);
                self.regs[rn.index() as usize] = r as u32; // low
                self.regs[rd.index() as usize] = (r >> 32) as u32; // high
                if s {
                    self.flags.set_nz64(r);
                }
                self.advance();
                self.done(self.costs.mull)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_ldst(
        &mut self,
        ext: &mut dyn ExtBus,
        load: bool,
        size: MemSize,
        rd: Reg,
        rn: Reg,
        offset: Offset,
        up: bool,
        mode: AddrMode,
    ) -> StepEvent {
        let rnv = self.read_op(rn);
        let offv = match offset {
            Offset::Imm(v) => v as u32,
            Offset::Reg(rm) => self.read_op(rm),
        };
        let indexed = if up {
            rnv.wrapping_add(offv)
        } else {
            rnv.wrapping_sub(offv)
        };
        let addr = match mode {
            AddrMode::Offset | AddrMode::PreIndex => indexed,
            AddrMode::PostIndex => rnv,
        };
        self.exec_ldst_at(
            ext,
            load,
            size,
            rd,
            rn,
            indexed,
            addr,
            mode != AddrMode::Offset,
        )
    }

    /// Load/store execution from a resolved effective address (shared by
    /// both engines).
    #[allow(clippy::too_many_arguments)]
    fn exec_ldst_at(
        &mut self,
        ext: &mut dyn ExtBus,
        load: bool,
        size: MemSize,
        rd: Reg,
        rn: Reg,
        indexed: u32,
        addr: u32,
        writeback: bool,
    ) -> StepEvent {
        let width = size.bytes();
        if !addr.is_multiple_of(width) {
            return self.raise(CpuFault::Unaligned { addr, align: width });
        }

        let value: u32;
        if self.is_external(addr) {
            let ext_width = match size {
                MemSize::Byte | MemSize::SByte => ExtWidth::Byte,
                MemSize::Half | MemSize::SHalf => ExtWidth::Half,
                MemSize::Word => ExtWidth::Word,
            };
            let result = if load {
                ext.ext_read(addr, ext_width)
            } else {
                ext.ext_write(addr, self.read_op(rd) & width_mask(width), ext_width)
            };
            match result {
                ExtResult::Stall => return StepEvent::Stalled,
                ExtResult::Fault => return self.raise(CpuFault::ExternalFault { addr }),
                ExtResult::Done(v) => {
                    if load {
                        self.stats.ext_reads += 1;
                    } else {
                        self.stats.ext_writes += 1;
                    }
                    value = extend(v, size);
                }
            }
        } else {
            let r = if load {
                match width {
                    1 => self.local.read8(addr).map(|v| v as u32),
                    2 => self.local.read16(addr).map(|v| v as u32),
                    _ => self.local.read32(addr),
                }
            } else {
                let sv = self.read_op(rd);
                match width {
                    1 => self.local.write8(addr, sv as u8).map(|()| 0),
                    2 => self.local.write16(addr, sv as u16).map(|()| 0),
                    _ => self.local.write32(addr, sv).map(|()| 0),
                }
            };
            match r {
                Ok(v) => value = extend(v, size),
                Err(_) => return self.raise(CpuFault::DataAbort { addr }),
            }
        }

        // Commit phase: writeback, destination, pc.
        if writeback {
            self.regs[rn.index() as usize] = indexed;
        }
        let mut branched = false;
        if load {
            self.stats.loads += 1;
            if rd.is_pc() {
                self.regs[15] = value & !3;
                self.stats.branches += 1;
                branched = true;
            } else {
                // On rd == rn with writeback, the loaded value wins.
                self.regs[rd.index() as usize] = value;
            }
        } else {
            self.stats.stores += 1;
        }
        if !branched {
            self.advance();
        }
        let cost = if load {
            self.costs.load
        } else {
            self.costs.store
        };
        self.done(if branched { cost + self.costs.branch } else { cost })
    }

    fn exec_ldstm(
        &mut self,
        load: bool,
        mode: MultiMode,
        writeback: bool,
        rn: Reg,
        list: u16,
    ) -> StepEvent {
        self.exec_ldstm_flat(load, mode == MultiMode::Db, writeback, rn, list)
    }

    /// Block-transfer execution with the address progression reduced to a
    /// boolean (shared by both engines).
    fn exec_ldstm_flat(
        &mut self,
        load: bool,
        db: bool,
        writeback: bool,
        rn: Reg,
        list: u16,
    ) -> StepEvent {
        let rnv = self.read_op(rn);
        let count = list.count_ones();
        let start = if db { rnv.wrapping_sub(4 * count) } else { rnv };
        if start % 4 != 0 {
            return self.raise(CpuFault::Unaligned {
                addr: start,
                align: 4,
            });
        }
        if self.is_external(start) || self.is_external(start.wrapping_add(4 * count - 1)) {
            return self.raise(CpuFault::ExternalBlockTransfer { addr: start });
        }

        // Pre-read stored values (so a base in the list stores its original
        // value regardless of writeback ordering).
        let mut addr = start;
        if load {
            let mut loaded: Vec<(Reg, u32)> = Vec::with_capacity(count as usize);
            for i in 0..16 {
                if list & (1 << i) != 0 {
                    match self.local.read32(addr) {
                        Ok(v) => loaded.push((Reg::new(i), v)),
                        Err(_) => return self.raise(CpuFault::DataAbort { addr }),
                    }
                    addr = addr.wrapping_add(4);
                }
            }
            if writeback {
                let final_base = if db {
                    start
                } else {
                    rnv.wrapping_add(4 * count)
                };
                self.regs[rn.index() as usize] = final_base;
            }
            let mut branched = false;
            for (r, v) in loaded {
                if r.is_pc() {
                    self.regs[15] = v & !3;
                    self.stats.branches += 1;
                    branched = true;
                } else {
                    self.regs[r.index() as usize] = v;
                }
            }
            self.stats.loads += count as u64;
            if !branched {
                self.advance();
            }
            self.done(self.costs.ldm_base + self.costs.ldm_per_reg * count as u64)
        } else {
            for i in 0..16 {
                if list & (1 << i) != 0 {
                    let v = self.read_op(Reg::new(i));
                    if self.local.write32(addr, v).is_err() {
                        return self.raise(CpuFault::DataAbort { addr });
                    }
                    addr = addr.wrapping_add(4);
                }
            }
            if writeback {
                let final_base = if db {
                    start
                } else {
                    rnv.wrapping_add(4 * count)
                };
                self.regs[rn.index() as usize] = final_base;
            }
            self.stats.stores += count as u64;
            self.advance();
            self.done(self.costs.ldm_base + self.costs.ldm_per_reg * count as u64)
        }
    }

    fn exec_swi(&mut self, imm: u16) -> StepEvent {
        let Some(call) = Syscall::from_imm(imm) else {
            return self.raise(CpuFault::UnknownSyscall(imm));
        };
        self.stats.swis += 1;
        match call {
            Syscall::Halt => {
                self.halted = true;
                self.exit_code = self.regs[0];
                self.advance();
                self.done(self.costs.swi)
            }
            Syscall::PutChar => {
                self.console.put(self.regs[0] as u8);
                self.advance();
                self.done(self.costs.swi)
            }
            Syscall::Cycles => {
                self.regs[0] = self.cycles as u32;
                self.regs[1] = (self.cycles >> 32) as u32;
                self.advance();
                self.done(self.costs.swi)
            }
            Syscall::PutInt => {
                let text = format!("{}\n", self.regs[0] as i32);
                self.console.put_str(&text);
                self.advance();
                self.done(self.costs.swi)
            }
            Syscall::CpuId => {
                self.regs[0] = self.id;
                self.advance();
                self.done(self.costs.swi)
            }
        }
    }

    /// Runs until halt, fault, or `max_steps` instructions. Intended for
    /// tests and stand-alone (non-co-simulated) execution; stalls from the
    /// bus are returned as-is.
    pub fn run(&mut self, ext: &mut dyn ExtBus, max_steps: u64) -> StepEvent {
        for _ in 0..max_steps {
            match self.step(ext) {
                StepEvent::Executed { .. } => {}
                other => return other,
            }
        }
        StepEvent::Executed { cycles: 0 }
    }
}

#[inline]
fn width_mask(width: u32) -> u32 {
    match width {
        1 => 0xFF,
        2 => 0xFFFF,
        _ => u32::MAX,
    }
}

/// Zero/sign-extends a loaded raw value according to the memory size.
#[inline]
fn extend(v: u32, size: MemSize) -> u32 {
    match size {
        MemSize::Byte => v & 0xFF,
        MemSize::Half => v & 0xFFFF,
        MemSize::Word => v,
        MemSize::SByte => v as u8 as i8 as i32 as u32,
        MemSize::SHalf => v as u16 as i16 as i32 as u32,
    }
}
