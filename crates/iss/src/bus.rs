//! The external-bus interface seen by the CPU core.
//!
//! Accesses outside the private memory range are routed through [`ExtBus`].
//! In co-simulation the implementation drives the interconnect's handshake
//! signals; a transaction then takes several simulated cycles, during which
//! the access returns [`ExtResult::Stall`] and the core holds the faulting
//! instruction uncommitted. Tests use in-process implementations that
//! respond immediately.

/// Width of an external transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtWidth {
    /// 8-bit transfer.
    Byte,
    /// 16-bit transfer.
    Half,
    /// 32-bit transfer.
    Word,
}

impl ExtWidth {
    /// Size in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            ExtWidth::Byte => 1,
            ExtWidth::Half => 2,
            ExtWidth::Word => 4,
        }
    }

    /// Encoding used on the bus `size` signal.
    pub fn bits(self) -> u64 {
        match self {
            ExtWidth::Byte => 0,
            ExtWidth::Half => 1,
            ExtWidth::Word => 2,
        }
    }

    /// Decodes the bus `size` signal.
    pub fn from_bits(bits: u64) -> Option<ExtWidth> {
        Some(match bits {
            0 => ExtWidth::Byte,
            1 => ExtWidth::Half,
            2 => ExtWidth::Word,
            _ => return None,
        })
    }
}

/// Outcome of an external access attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtResult {
    /// The access completed with this value (zero for writes).
    Done(u32),
    /// The access is in flight; retry the instruction later.
    Stall,
    /// No device responds at this address.
    Fault,
}

/// A bus the CPU can issue single-beat external accesses on.
pub trait ExtBus {
    /// Attempts a read of `width` at `addr`.
    fn ext_read(&mut self, addr: u32, width: ExtWidth) -> ExtResult;
    /// Attempts a write of `width` at `addr`.
    fn ext_write(&mut self, addr: u32, value: u32, width: ExtWidth) -> ExtResult;
}

/// An [`ExtBus`] that faults every access — for CPUs with no bus connection.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoBus;

impl ExtBus for NoBus {
    fn ext_read(&mut self, _addr: u32, _width: ExtWidth) -> ExtResult {
        ExtResult::Fault
    }
    fn ext_write(&mut self, _addr: u32, _value: u32, _width: ExtWidth) -> ExtResult {
        ExtResult::Fault
    }
}

/// An [`ExtBus`] backed by a flat vector with zero latency — for unit tests
/// and single-process experiments.
#[derive(Debug, Clone)]
pub struct FlatBus {
    base: u32,
    bytes: Vec<u8>,
    /// Number of accesses served.
    pub accesses: u64,
}

impl FlatBus {
    /// Creates a zeroed flat bus memory of `size` bytes at `base`.
    pub fn new(base: u32, size: u32) -> Self {
        FlatBus {
            base,
            bytes: vec![0; size as usize],
            accesses: 0,
        }
    }

    fn offset(&self, addr: u32, width: ExtWidth) -> Option<usize> {
        let end = addr.checked_add(width.bytes())?;
        if addr < self.base || end - self.base > self.bytes.len() as u32 {
            return None;
        }
        Some((addr - self.base) as usize)
    }
}

impl ExtBus for FlatBus {
    fn ext_read(&mut self, addr: u32, width: ExtWidth) -> ExtResult {
        let Some(i) = self.offset(addr, width) else {
            return ExtResult::Fault;
        };
        self.accesses += 1;
        let v = match width {
            ExtWidth::Byte => self.bytes[i] as u32,
            ExtWidth::Half => u16::from_le_bytes([self.bytes[i], self.bytes[i + 1]]) as u32,
            ExtWidth::Word => u32::from_le_bytes([
                self.bytes[i],
                self.bytes[i + 1],
                self.bytes[i + 2],
                self.bytes[i + 3],
            ]),
        };
        ExtResult::Done(v)
    }

    fn ext_write(&mut self, addr: u32, value: u32, width: ExtWidth) -> ExtResult {
        let Some(i) = self.offset(addr, width) else {
            return ExtResult::Fault;
        };
        self.accesses += 1;
        match width {
            ExtWidth::Byte => self.bytes[i] = value as u8,
            ExtWidth::Half => self.bytes[i..i + 2].copy_from_slice(&(value as u16).to_le_bytes()),
            ExtWidth::Word => self.bytes[i..i + 4].copy_from_slice(&value.to_le_bytes()),
        }
        ExtResult::Done(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_encoding() {
        for w in [ExtWidth::Byte, ExtWidth::Half, ExtWidth::Word] {
            assert_eq!(ExtWidth::from_bits(w.bits()), Some(w));
        }
        assert_eq!(ExtWidth::from_bits(3), None);
        assert_eq!(ExtWidth::Word.bytes(), 4);
    }

    #[test]
    fn flat_bus_round_trips() {
        let mut b = FlatBus::new(0x8000_0000, 0x100);
        assert_eq!(
            b.ext_write(0x8000_0010, 0xCAFEBABE, ExtWidth::Word),
            ExtResult::Done(0)
        );
        assert_eq!(
            b.ext_read(0x8000_0010, ExtWidth::Word),
            ExtResult::Done(0xCAFEBABE)
        );
        assert_eq!(
            b.ext_read(0x8000_0010, ExtWidth::Byte),
            ExtResult::Done(0xBE)
        );
        assert_eq!(b.ext_read(0x7FFF_FFFF, ExtWidth::Byte), ExtResult::Fault);
        assert_eq!(b.ext_read(0x8000_00FF, ExtWidth::Word), ExtResult::Fault);
        assert_eq!(b.accesses, 3);
    }

    #[test]
    fn no_bus_always_faults() {
        let mut n = NoBus;
        assert_eq!(n.ext_read(0, ExtWidth::Word), ExtResult::Fault);
        assert_eq!(n.ext_write(0, 0, ExtWidth::Byte), ExtResult::Fault);
    }
}
