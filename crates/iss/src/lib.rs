//! # dmi-iss — SimARM instruction-set simulator
//!
//! A cycle-approximate interpreter for the [`dmi-isa`](dmi_isa) instruction
//! set, playing the role SimIt-ARM plays in the DATE'05 dynamic memory
//! integration paper: the processing elements of the co-simulated MPSoC.
//!
//! Two layers:
//!
//! * [`CpuCore`] — a pure interpreter (registers, flags, private memory,
//!   timing model, SWI services) that can be unit-tested and benchmarked
//!   without a simulation kernel. It dispatches predecoded micro-ops
//!   through a per-core decoded-instruction cache by default, with the
//!   original word-at-a-time interpreter selectable at run time
//!   ([`CpuCore::set_predecode`]) — see `README.md` in this crate;
//! * [`CpuComponent`] — the co-simulation wrapper that clocks a core and
//!   speaks the bus-master handshake for accesses into the shared window,
//!   stalling the core until the interconnect answers.
//!
//! ## Running a bare program
//!
//! ```
//! use dmi_isa::{Asm, Reg};
//! use dmi_iss::{CpuCore, LocalMemory, NoBus, StepEvent};
//!
//! let mut a = Asm::new();
//! a.li(Reg::R0, 6);
//! a.li(Reg::R1, 7);
//! a.mul(Reg::R2, Reg::R0, Reg::R1);
//! a.swi(0); // halt
//! let prog = a.assemble(0).unwrap();
//!
//! let mut cpu = CpuCore::new(0, LocalMemory::new(0, 0x1000));
//! cpu.load_program(&prog);
//! let ev = cpu.run(&mut NoBus, 100);
//! assert_eq!(ev, StepEvent::Halted);
//! assert_eq!(cpu.reg(Reg::R2), 42);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bus;
mod component;
mod cpu;
mod flags;
mod localmem;
mod syscall;

pub use bus::{ExtBus, ExtResult, ExtWidth, FlatBus, NoBus};
pub use component::{BusMasterPorts, CpuComponent, CpuComponentStats, HaltMonitor};
pub use cpu::{predecode_default, CpuCore, CpuFault, CpuStats, CycleCosts, StepEvent};
pub use flags::{add_with_carry, Flags};
pub use localmem::{LocalMemory, OutOfRange};
pub use syscall::{Console, Syscall};
