//! Behavioural tests of the interconnect models using scripted masters and
//! a configurable-latency RAM slave (no CPU / memory-model dependencies).

use std::any::Any;

use dmi_interconnect::{
    AddressMap, ArbiterKind, BusConfig, Crossbar, CrossbarConfig, MasterIf, SharedBus, SlaveIf,
    DECODE_ERROR_DATA,
};
use dmi_kernel::{Component, Ctx, Edge, Simulator, Wake, Wire};

/// A slave RAM with fixed latency, speaking the slave handshake.
#[derive(Debug)]
struct TestRam {
    clk: Wire,
    ports: SlaveIf,
    base: u32,
    bytes: Vec<u8>,
    latency: u64,
    state: RamState,
    served: u64,
    /// Master index seen on the most recent transaction.
    last_master: u64,
}

#[derive(Debug, Clone, Copy)]
enum RamState {
    Idle,
    Exec { remaining: u64, data: u32 },
    AckWait,
}

impl Component for TestRam {
    fn name(&self) -> &str {
        "test_ram"
    }
    fn wake(&mut self, ctx: &mut Ctx<'_>) {
        match ctx.cause() {
            Wake::Start => {
                ctx.write_bit(self.ports.ack, false);
            }
            Wake::Signal(_) if ctx.is_signal(self.clk) => match self.state {
                RamState::Idle => {
                    if ctx.read_bit(self.ports.req) {
                        let addr = ctx.read(self.ports.addr) as u32;
                        let off = (addr - self.base) as usize;
                        self.last_master = ctx.read(self.ports.master);
                        let data = if ctx.read_bit(self.ports.we) {
                            let w = ctx.read(self.ports.wdata) as u32;
                            self.bytes[off..off + 4].copy_from_slice(&w.to_le_bytes());
                            0
                        } else {
                            u32::from_le_bytes([
                                self.bytes[off],
                                self.bytes[off + 1],
                                self.bytes[off + 2],
                                self.bytes[off + 3],
                            ])
                        };
                        self.state = RamState::Exec {
                            remaining: self.latency,
                            data,
                        };
                    }
                }
                RamState::Exec { remaining, data } => {
                    if remaining <= 1 {
                        ctx.write_bit(self.ports.ack, true);
                        ctx.write(self.ports.rdata, data as u64);
                        self.served += 1;
                        self.state = RamState::AckWait;
                    } else {
                        self.state = RamState::Exec {
                            remaining: remaining - 1,
                            data,
                        };
                    }
                }
                RamState::AckWait => {
                    ctx.write_bit(self.ports.ack, false);
                    if !ctx.read_bit(self.ports.req) {
                        self.state = RamState::Idle;
                    }
                }
            },
            _ => {}
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A master that performs a fixed list of `(addr, we, wdata)` transactions
/// back to back and records results and per-transaction latency.
#[derive(Debug)]
struct TestMaster {
    clk: Wire,
    ports: MasterIf,
    script: Vec<(u32, bool, u32)>,
    results: Vec<u32>,
    latencies: Vec<u64>,
    cycle: u64,
    issued_at: u64,
    index: usize,
    busy: bool,
    done_wire: Wire,
}

impl Component for TestMaster {
    fn name(&self) -> &str {
        "test_master"
    }
    fn wake(&mut self, ctx: &mut Ctx<'_>) {
        match ctx.cause() {
            Wake::Start => {
                ctx.write_bit(self.ports.req, false);
                // An empty script is complete immediately.
                ctx.write_bit(self.done_wire, self.script.is_empty());
            }
            Wake::Signal(_) if ctx.is_signal(self.clk) => {
                self.cycle += 1;
                if self.busy {
                    if ctx.read_bit(self.ports.ack) {
                        self.results.push(ctx.read(self.ports.rdata) as u32);
                        self.latencies.push(self.cycle - self.issued_at);
                        ctx.write_bit(self.ports.req, false);
                        self.busy = false;
                        self.index += 1;
                        if self.index == self.script.len() {
                            ctx.write_bit(self.done_wire, true);
                        }
                    }
                    return;
                }
                if self.index < self.script.len() {
                    let (addr, we, wdata) = self.script[self.index];
                    ctx.write_bit(self.ports.req, true);
                    ctx.write_bit(self.ports.we, we);
                    ctx.write(self.ports.addr, addr as u64);
                    ctx.write(self.ports.wdata, wdata as u64);
                    ctx.write(self.ports.size, 2);
                    self.issued_at = self.cycle;
                    self.busy = true;
                }
            }
            _ => {}
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Stops the simulation when every `done` wire is high.
#[derive(Debug)]
struct AllDone {
    wires: Vec<Wire>,
}
impl Component for AllDone {
    fn name(&self) -> &str {
        "all_done"
    }
    fn wake(&mut self, ctx: &mut Ctx<'_>) {
        if matches!(ctx.cause(), Wake::Signal(_)) && self.wires.iter().all(|&w| ctx.read_bit(w))
        {
            ctx.stop("all masters done");
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

const MEM0: u32 = 0x8000_0000;
const MEM1: u32 = 0x9000_0000;

struct Harness {
    sim: Simulator,
    master_ids: Vec<dmi_kernel::ComponentId>,
    bus_id: dmi_kernel::ComponentId,
    ram_ids: Vec<dmi_kernel::ComponentId>,
}

/// Builds `n_masters` scripted masters, `n_rams` RAM slaves and the chosen
/// interconnect, runs until every script completes.
fn run_system(
    scripts: Vec<Vec<(u32, bool, u32)>>,
    n_rams: usize,
    ram_latency: u64,
    crossbar: bool,
) -> Harness {
    run_system_full(
        scripts,
        n_rams,
        ram_latency,
        crossbar,
        BusConfig::default(),
        CrossbarConfig::default(),
    )
}

/// [`run_system`] with an explicit crossbar configuration.
fn run_system_xbar(
    scripts: Vec<Vec<(u32, bool, u32)>>,
    n_rams: usize,
    ram_latency: u64,
    xbar_config: CrossbarConfig,
) -> Harness {
    run_system_full(
        scripts,
        n_rams,
        ram_latency,
        true,
        BusConfig::default(),
        xbar_config,
    )
}

/// [`run_system`] with an explicit shared-bus configuration.
fn run_system_cfg(
    scripts: Vec<Vec<(u32, bool, u32)>>,
    n_rams: usize,
    ram_latency: u64,
    crossbar: bool,
    bus_config: BusConfig,
) -> Harness {
    run_system_full(
        scripts,
        n_rams,
        ram_latency,
        crossbar,
        bus_config,
        CrossbarConfig::default(),
    )
}

fn run_system_full(
    scripts: Vec<Vec<(u32, bool, u32)>>,
    n_rams: usize,
    ram_latency: u64,
    crossbar: bool,
    bus_config: BusConfig,
    xbar_config: CrossbarConfig,
) -> Harness {
    let mut sim = Simulator::new();
    let clk = sim.add_clock("clk", 2);

    let mut masters = Vec::new();
    let mut done_wires = Vec::new();
    let mut master_ids = Vec::new();
    for (i, script) in scripts.into_iter().enumerate() {
        let ports = MasterIf::declare(&mut sim, &format!("m{i}"));
        let done = sim.wire(format!("m{i}.done"), 1);
        let id = sim.add_component(Box::new(TestMaster {
            clk,
            ports,
            script,
            results: Vec::new(),
            latencies: Vec::new(),
            cycle: 0,
            issued_at: 0,
            index: 0,
            busy: false,
            done_wire: done,
        }));
        sim.subscribe(id, clk, Edge::Rising);
        masters.push(ports);
        done_wires.push(done);
        master_ids.push(id);
    }

    let mut slaves = Vec::new();
    let mut ram_ids = Vec::new();
    let mut map = AddressMap::new();
    for s in 0..n_rams {
        let ports = SlaveIf::declare(&mut sim, &format!("s{s}"));
        let base = if s == 0 { MEM0 } else { MEM1 };
        map.try_add(base, 0x1000, s).unwrap();
        let id = sim.add_component(Box::new(TestRam {
            clk,
            ports,
            base,
            bytes: vec![0; 0x1000],
            latency: ram_latency,
            state: RamState::Idle,
            served: 0,
            last_master: 0,
        }));
        sim.subscribe(id, clk, Edge::Rising);
        slaves.push(ports);
        ram_ids.push(id);
    }

    let bus_id = if crossbar {
        let xbar = Crossbar::with_config(
            "xbar",
            clk,
            masters.clone(),
            slaves.clone(),
            map,
            xbar_config,
        );
        let id = sim.add_component(Box::new(xbar));
        sim.subscribe(id, clk, Edge::Rising);
        id
    } else {
        let bus = SharedBus::new(
            "bus",
            clk,
            masters.clone(),
            slaves.clone(),
            map,
            bus_config,
        );
        let id = sim.add_component(Box::new(bus));
        sim.subscribe(id, clk, Edge::Rising);
        id
    };

    let mon = sim.add_component(Box::new(AllDone {
        wires: done_wires.clone(),
    }));
    for w in done_wires {
        sim.subscribe(mon, w, Edge::Rising);
    }

    let summary = sim.run_until_stopped(10_000_000);
    assert!(
        summary.stop.is_some() && !summary.is_error(),
        "system did not finish: {:?}",
        summary.stop
    );
    Harness {
        sim,
        master_ids,
        bus_id,
        ram_ids,
    }
}

fn master_results(h: &Harness, i: usize) -> (Vec<u32>, Vec<u64>) {
    let m: &TestMaster = h.sim.component(h.master_ids[i]).unwrap();
    (m.results.clone(), m.latencies.clone())
}

#[test]
fn single_master_write_then_read() {
    let h = run_system(
        vec![vec![
            (MEM0 + 0x10, true, 0xAABB_CCDD),
            (MEM0 + 0x10, false, 0),
            (MEM0 + 0x20, false, 0),
        ]],
        1,
        1,
        false,
    );
    let (results, latencies) = master_results(&h, 0);
    assert_eq!(results[1], 0xAABB_CCDD);
    assert_eq!(results[2], 0, "untouched RAM reads zero");
    // Latency is deterministic and identical for identical transactions.
    assert_eq!(latencies[1], latencies[2]);
}

#[test]
fn unmapped_address_returns_error_marker() {
    let h = run_system(vec![vec![(0x7000_0000, false, 0)]], 1, 1, false);
    let (results, _) = master_results(&h, 0);
    assert_eq!(results[0], DECODE_ERROR_DATA);
    let bus: &SharedBus = h.sim.component(h.bus_id).unwrap();
    assert_eq!(bus.stats().decode_errors, 1);
}

#[test]
fn two_masters_share_bus_fairly() {
    let script: Vec<_> = (0..20).map(|i| (MEM0 + i * 4, true, i)).collect();
    let script2: Vec<_> = (0..20).map(|i| (MEM0 + 0x800 + i * 4, true, i)).collect();
    let h = run_system(vec![script, script2], 1, 1, false);
    let bus: &SharedBus = h.sim.component(h.bus_id).unwrap();
    let stats = bus.stats();
    assert_eq!(stats.transactions, 40);
    // Round-robin: grants within 1 of each other.
    let g = &stats.master_grants;
    assert!((g[0] as i64 - g[1] as i64).abs() <= 1, "grants {g:?}");
    // Both masters experienced contention.
    assert!(stats.master_wait_cycles.iter().all(|&w| w > 0));
    assert!(stats.utilisation() > 0.5);
}

#[test]
fn contention_slows_masters_down() {
    let script: Vec<_> = (0..10).map(|i| (MEM0 + i * 4, false, 0)).collect();
    let solo = run_system(vec![script.clone()], 1, 2, false);
    let (_, solo_lat) = master_results(&solo, 0);
    let duo = run_system(vec![script.clone(), script], 1, 2, false);
    let (_, duo_lat) = master_results(&duo, 0);
    let solo_avg: u64 = solo_lat.iter().sum::<u64>() / solo_lat.len() as u64;
    let duo_avg: u64 = duo_lat.iter().sum::<u64>() / duo_lat.len() as u64;
    assert!(
        duo_avg > solo_avg,
        "contended latency {duo_avg} should exceed solo latency {solo_avg}"
    );
}

#[test]
fn crossbar_parallelises_distinct_slaves() {
    let s0: Vec<_> = (0..10).map(|i| (MEM0 + i * 4, false, 0)).collect();
    let s1: Vec<_> = (0..10).map(|i| (MEM1 + i * 4, false, 0)).collect();

    // On the shared bus, the two streams contend.
    let bus = run_system(vec![s0.clone(), s1.clone()], 2, 2, false);
    let (_, lat_bus) = master_results(&bus, 0);

    // On the crossbar, they proceed in parallel.
    let xbar = run_system(vec![s0, s1], 2, 2, true);
    let (_, lat_xbar) = master_results(&xbar, 0);

    let avg_bus: u64 = lat_bus.iter().sum::<u64>() / lat_bus.len() as u64;
    let avg_xbar: u64 = lat_xbar.iter().sum::<u64>() / lat_xbar.len() as u64;
    assert!(
        avg_xbar < avg_bus,
        "crossbar ({avg_xbar}) should beat shared bus ({avg_bus}) on disjoint targets"
    );
    let x: &Crossbar = xbar.sim.component(xbar.bus_id).unwrap();
    assert_eq!(x.stats().transactions, 20);
}

#[test]
fn slave_sees_master_index() {
    let h = run_system(
        vec![vec![], vec![(MEM0, true, 1)]], // only master 1 issues
        1,
        1,
        false,
    );
    let ram: &TestRam = h.sim.component(h.ram_ids[0]).unwrap();
    assert_eq!(ram.last_master, 1);
    assert_eq!(ram.served, 1);
}

#[test]
fn address_decode_routes_to_correct_slave() {
    let h = run_system(
        vec![vec![
            (MEM0 + 4, true, 0x11),
            (MEM1 + 4, true, 0x22),
            (MEM0 + 4, false, 0),
            (MEM1 + 4, false, 0),
        ]],
        2,
        1,
        false,
    );
    let (results, _) = master_results(&h, 0);
    assert_eq!(results[2], 0x11);
    assert_eq!(results[3], 0x22);
    let bus: &SharedBus = h.sim.component(h.bus_id).unwrap();
    assert_eq!(bus.stats().slave_transactions, vec![2, 2]);
}

#[test]
fn fixed_priority_prefers_low_index() {
    // Custom run with FixedPriority config.
    let mut sim = Simulator::new();
    let clk = sim.add_clock("clk", 2);
    let m0 = MasterIf::declare(&mut sim, "m0");
    let m1 = MasterIf::declare(&mut sim, "m1");
    let d0 = sim.wire("d0", 1);
    let d1 = sim.wire("d1", 1);
    let s0 = SlaveIf::declare(&mut sim, "s0");
    let mut map = AddressMap::new();
    map.try_add(MEM0, 0x1000, 0).unwrap();
    let mk_script = |n: u32| (0..n).map(|i| (MEM0 + i * 4, false, 0)).collect::<Vec<_>>();
    let a = sim.add_component(Box::new(TestMaster {
        clk,
        ports: m0,
        script: mk_script(10),
        results: vec![],
        latencies: vec![],
        cycle: 0,
        issued_at: 0,
        index: 0,
        busy: false,
        done_wire: d0,
    }));
    sim.subscribe(a, clk, Edge::Rising);
    let b = sim.add_component(Box::new(TestMaster {
        clk,
        ports: m1,
        script: mk_script(10),
        results: vec![],
        latencies: vec![],
        cycle: 0,
        issued_at: 0,
        index: 0,
        busy: false,
        done_wire: d1,
    }));
    sim.subscribe(b, clk, Edge::Rising);
    let ram = sim.add_component(Box::new(TestRam {
        clk,
        ports: s0,
        base: MEM0,
        bytes: vec![0; 0x1000],
        latency: 2,
        state: RamState::Idle,
        served: 0,
        last_master: 0,
    }));
    sim.subscribe(ram, clk, Edge::Rising);
    let bus = SharedBus::new(
        "bus",
        clk,
        vec![m0, m1],
        vec![s0],
        map,
        BusConfig {
            arbiter: ArbiterKind::FixedPriority,
            arbitration_latency: 1,
            ..BusConfig::default()
        },
    );
    let bid = sim.add_component(Box::new(bus));
    sim.subscribe(bid, clk, Edge::Rising);
    let mon = sim.add_component(Box::new(AllDone {
        wires: vec![d0, d1],
    }));
    sim.subscribe(mon, d0, Edge::Rising);
    sim.subscribe(mon, d1, Edge::Rising);
    let summary = sim.run_until_stopped(1_000_000);
    assert!(summary.stop.is_some());
    // Master 1 (low priority) waited more than master 0.
    let bus: &SharedBus = sim.component(bid).unwrap();
    let w = bus.stats().master_wait_cycles;
    assert!(
        w[1] > w[0],
        "fixed priority should starve master 1: waits {w:?}"
    );
}

#[test]
fn burst_grant_elides_rearbitration_for_streams() {
    // One master streaming 20 accesses to the same slave: with grant
    // retention every transaction after the first skips the
    // arbitration-latency phase, so per-transaction latency drops.
    let script: Vec<(u32, bool, u32)> = (0..20).map(|i| (MEM0 + i * 4, false, 0)).collect();
    let slow = run_system_cfg(vec![script.clone()], 1, 1, false, BusConfig::default());
    let fast = run_system_cfg(
        vec![script],
        1,
        1,
        false,
        BusConfig {
            burst_grant: true,
            ..BusConfig::default()
        },
    );
    let (r_slow, l_slow) = master_results(&slow, 0);
    let (r_fast, l_fast) = master_results(&fast, 0);
    assert_eq!(r_slow, r_fast, "burst grant never changes data");
    let total_slow: u64 = l_slow.iter().sum();
    let total_fast: u64 = l_fast.iter().sum();
    assert!(
        total_fast + 19 <= total_slow,
        "retained grants should save one cycle per back-to-back transfer: {total_fast} vs {total_slow}"
    );
    let bus: &SharedBus = fast.sim.component(fast.bus_id).unwrap();
    assert_eq!(bus.stats().retained_grants, 19, "all but the first retain");
    let bus: &SharedBus = slow.sim.component(slow.bus_id).unwrap();
    assert_eq!(bus.stats().retained_grants, 0, "off by default");
}

#[test]
fn burst_grant_preserves_fairness_under_contention() {
    // Two masters hammering the same slave: retention must not starve the
    // round-robin loser — both scripts still complete, and grants stay
    // balanced.
    let script: Vec<(u32, bool, u32)> = (0..16).map(|i| (MEM0 + i * 4, false, 0)).collect();
    let h = run_system_cfg(
        vec![script.clone(), script],
        1,
        1,
        false,
        BusConfig {
            burst_grant: true,
            ..BusConfig::default()
        },
    );
    let bus: &SharedBus = h.sim.component(h.bus_id).unwrap();
    let g = bus.stats().master_grants.clone();
    assert!(
        (g[0] as i64 - g[1] as i64).abs() <= 1,
        "round-robin fairness survives grant retention: {g:?}"
    );
}

#[test]
fn crossbar_arbitration_latency_slows_lanes() {
    // The same stream with a 1-cycle arbitration phase per transaction is
    // strictly slower than the default forward-in-grant-cycle timing.
    let script: Vec<(u32, bool, u32)> = (0..10).map(|i| (MEM0 + i * 4, false, 0)).collect();
    let fast = run_system_xbar(vec![script.clone()], 1, 1, CrossbarConfig::default());
    let slow = run_system_xbar(
        vec![script],
        1,
        1,
        CrossbarConfig {
            arbitration_latency: 1,
            ..CrossbarConfig::default()
        },
    );
    let (r_fast, l_fast) = master_results(&fast, 0);
    let (r_slow, l_slow) = master_results(&slow, 0);
    assert_eq!(r_fast, r_slow, "latency never changes data");
    let t_fast: u64 = l_fast.iter().sum();
    let t_slow: u64 = l_slow.iter().sum();
    assert!(
        t_slow >= t_fast + 10,
        "one extra cycle per transaction: {t_slow} vs {t_fast}"
    );
}

#[test]
fn crossbar_burst_grant_elides_rearbitration_for_streams() {
    // Mirror of `burst_grant_elides_rearbitration_for_streams` on the
    // shared bus: one master streaming to one slave, with a 1-cycle
    // arbitration phase. Retention removes it for every transaction after
    // the first.
    let script: Vec<(u32, bool, u32)> = (0..20).map(|i| (MEM0 + i * 4, false, 0)).collect();
    let base = CrossbarConfig {
        arbitration_latency: 1,
        ..CrossbarConfig::default()
    };
    let slow = run_system_xbar(vec![script.clone()], 1, 1, base);
    let fast = run_system_xbar(
        vec![script],
        1,
        1,
        CrossbarConfig {
            burst_grant: true,
            ..base
        },
    );
    let (r_slow, l_slow) = master_results(&slow, 0);
    let (r_fast, l_fast) = master_results(&fast, 0);
    assert_eq!(r_slow, r_fast, "burst grant never changes data");
    let total_slow: u64 = l_slow.iter().sum();
    let total_fast: u64 = l_fast.iter().sum();
    assert!(
        total_fast + 19 <= total_slow,
        "retained grants should save one cycle per back-to-back transfer: \
         {total_fast} vs {total_slow}"
    );
    let x: &Crossbar = fast.sim.component(fast.bus_id).unwrap();
    assert_eq!(x.stats().retained_grants, 19, "all but the first retain");
    let x: &Crossbar = slow.sim.component(slow.bus_id).unwrap();
    assert_eq!(x.stats().retained_grants, 0, "off by default");
}

#[test]
fn crossbar_burst_grant_retains_per_lane() {
    // Two masters streaming to *different* slaves: each lane retains its
    // own master's grant independently — full parallelism plus retention.
    let s0: Vec<_> = (0..10).map(|i| (MEM0 + i * 4, false, 0)).collect();
    let s1: Vec<_> = (0..10).map(|i| (MEM1 + i * 4, false, 0)).collect();
    let h = run_system_xbar(
        vec![s0, s1],
        2,
        1,
        CrossbarConfig {
            arbitration_latency: 1,
            burst_grant: true,
            ..CrossbarConfig::default()
        },
    );
    let x: &Crossbar = h.sim.component(h.bus_id).unwrap();
    let stats = x.stats();
    assert_eq!(stats.transactions, 20);
    assert_eq!(
        stats.retained_grants, 18,
        "each lane retains all but its first grant"
    );
}

#[test]
fn crossbar_burst_grant_preserves_fairness_under_contention() {
    // Two masters hammering the same slave: retention must not starve the
    // round-robin loser.
    let script: Vec<(u32, bool, u32)> = (0..16).map(|i| (MEM0 + i * 4, false, 0)).collect();
    let h = run_system_xbar(
        vec![script.clone(), script],
        1,
        1,
        CrossbarConfig {
            arbitration_latency: 1,
            burst_grant: true,
            ..CrossbarConfig::default()
        },
    );
    let x: &Crossbar = h.sim.component(h.bus_id).unwrap();
    let g = x.stats().master_grants.clone();
    assert!(
        (g[0] as i64 - g[1] as i64).abs() <= 1,
        "round-robin fairness survives grant retention: {g:?}"
    );
}
