//! Address decoding: which slave answers which address range.

/// One decoded region of the shared address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First byte address of the region.
    pub base: u32,
    /// Size in bytes.
    pub size: u32,
    /// Index of the slave serving this region.
    pub slave: usize,
}

impl Region {
    /// Whether `addr` falls inside this region.
    #[inline]
    pub fn contains(&self, addr: u32) -> bool {
        addr >= self.base && (addr - self.base) < self.size
    }
}

/// The interconnect's address map (the paper's `sm_addr` decode: the
/// shared-memory address identifying the memory module).
#[derive(Debug, Clone, Default)]
pub struct AddressMap {
    regions: Vec<Region>,
}

impl AddressMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a region.
    ///
    /// # Panics
    ///
    /// Panics if the region overlaps an existing one or has zero size.
    pub fn add(&mut self, base: u32, size: u32, slave: usize) -> &mut Self {
        assert!(size > 0, "zero-sized region");
        let new = Region { base, size, slave };
        for r in &self.regions {
            let disjoint = base >= r.base.wrapping_add(r.size) || r.base >= base.wrapping_add(size);
            assert!(
                disjoint,
                "region {base:#x}+{size:#x} overlaps {:#x}+{:#x}",
                r.base, r.size
            );
        }
        self.regions.push(new);
        self.regions.sort_by_key(|r| r.base);
        self
    }

    /// Decodes an address to its slave index.
    pub fn decode(&self, addr: u32) -> Option<usize> {
        let idx = match self.regions.binary_search_by_key(&addr, |r| r.base) {
            Ok(i) => i,
            Err(0) => return None,
            Err(i) => i - 1,
        };
        let r = &self.regions[idx];
        r.contains(addr).then_some(r.slave)
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// All regions in base order.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_to_correct_slave() {
        let mut m = AddressMap::new();
        m.add(0x8000_0000, 0x1000, 0)
            .add(0x8000_1000, 0x1000, 1)
            .add(0x9000_0000, 0x100, 2);
        assert_eq!(m.decode(0x8000_0000), Some(0));
        assert_eq!(m.decode(0x8000_0FFF), Some(0));
        assert_eq!(m.decode(0x8000_1000), Some(1));
        assert_eq!(m.decode(0x9000_0050), Some(2));
        assert_eq!(m.decode(0x9000_0100), None);
        assert_eq!(m.decode(0x7FFF_FFFF), None);
        assert_eq!(m.decode(0x8000_2000), None);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlap_rejected() {
        let mut m = AddressMap::new();
        m.add(0x1000, 0x100, 0).add(0x10FF, 0x100, 1);
    }

    #[test]
    #[should_panic(expected = "zero-sized")]
    fn zero_size_rejected() {
        AddressMap::new().add(0, 0, 0);
    }

    #[test]
    fn adjacent_regions_allowed() {
        let mut m = AddressMap::new();
        m.add(0x1000, 0x100, 0).add(0x1100, 0x100, 1);
        assert_eq!(m.decode(0x10FF), Some(0));
        assert_eq!(m.decode(0x1100), Some(1));
    }
}
