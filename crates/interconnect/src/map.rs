//! Address decoding: which slave answers which address range.

/// One decoded region of the shared address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First byte address of the region.
    pub base: u32,
    /// Size in bytes.
    pub size: u32,
    /// Index of the slave serving this region.
    pub slave: usize,
}

impl Region {
    /// Whether `addr` falls inside this region.
    #[inline]
    pub fn contains(&self, addr: u32) -> bool {
        addr >= self.base && (addr - self.base) < self.size
    }
}

/// Why a region could not be added to an [`AddressMap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapError {
    /// The region's size is zero.
    ZeroSize {
        /// Base address of the rejected region.
        base: u32,
    },
    /// The region's end address wraps past the top of the address space.
    AddressWrap {
        /// Base address of the rejected region.
        base: u32,
        /// Size of the rejected region.
        size: u32,
    },
    /// The region overlaps one already in the map.
    Overlap {
        /// The rejected region.
        new: Region,
        /// The existing region it collides with.
        existing: Region,
    },
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapError::ZeroSize { base } => write!(f, "zero-sized region at {base:#x}"),
            MapError::AddressWrap { base, size } => {
                write!(f, "region {base:#x}+{size:#x} wraps the address space")
            }
            MapError::Overlap { new, existing } => write!(
                f,
                "region {:#x}+{:#x} overlaps {:#x}+{:#x} (slave {})",
                new.base, new.size, existing.base, existing.size, existing.slave
            ),
        }
    }
}

impl std::error::Error for MapError {}

/// The interconnect's address map (the paper's `sm_addr` decode: the
/// shared-memory address identifying the memory module).
#[derive(Debug, Clone, Default)]
pub struct AddressMap {
    regions: Vec<Region>,
}

impl AddressMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a region, validating size and non-overlap.
    ///
    /// # Errors
    ///
    /// Returns a [`MapError`] if the region is zero-sized, wraps the top of
    /// the address space, or overlaps a region already in the map. The map
    /// is unchanged on error.
    pub fn try_add(&mut self, base: u32, size: u32, slave: usize) -> Result<(), MapError> {
        if size == 0 {
            return Err(MapError::ZeroSize { base });
        }
        if base.checked_add(size - 1).is_none() {
            return Err(MapError::AddressWrap { base, size });
        }
        let new = Region { base, size, slave };
        for r in &self.regions {
            // u64 arithmetic: `base + size` may be 2^32 for a region
            // touching the top of the address space.
            let disjoint = base as u64 >= r.base as u64 + r.size as u64
                || r.base as u64 >= base as u64 + size as u64;
            if !disjoint {
                return Err(MapError::Overlap {
                    new,
                    existing: *r,
                });
            }
        }
        self.regions.push(new);
        self.regions.sort_by_key(|r| r.base);
        Ok(())
    }

    /// Decodes an address to its slave index.
    pub fn decode(&self, addr: u32) -> Option<usize> {
        let idx = match self.regions.binary_search_by_key(&addr, |r| r.base) {
            Ok(i) => i,
            Err(0) => return None,
            Err(i) => i - 1,
        };
        let r = &self.regions[idx];
        r.contains(addr).then_some(r.slave)
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// All regions in base order.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_to_correct_slave() {
        let mut m = AddressMap::new();
        m.try_add(0x8000_0000, 0x1000, 0).unwrap();
        m.try_add(0x8000_1000, 0x1000, 1).unwrap();
        m.try_add(0x9000_0000, 0x100, 2).unwrap();
        assert_eq!(m.decode(0x8000_0000), Some(0));
        assert_eq!(m.decode(0x8000_0FFF), Some(0));
        assert_eq!(m.decode(0x8000_1000), Some(1));
        assert_eq!(m.decode(0x9000_0050), Some(2));
        assert_eq!(m.decode(0x9000_0100), None);
        assert_eq!(m.decode(0x7FFF_FFFF), None);
        assert_eq!(m.decode(0x8000_2000), None);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
    }

    #[test]
    fn overlap_rejected() {
        let mut m = AddressMap::new();
        m.try_add(0x1000, 0x100, 0).unwrap();
        let err = m.try_add(0x10FF, 0x100, 1).unwrap_err();
        assert!(err.to_string().contains("overlaps"), "{err}");
    }

    #[test]
    fn zero_size_rejected() {
        let err = AddressMap::new().try_add(0, 0, 0).unwrap_err();
        assert!(err.to_string().contains("zero-sized"), "{err}");
    }

    #[test]
    fn try_add_reports_typed_errors() {
        let mut m = AddressMap::new();
        m.try_add(0x1000, 0x100, 0).unwrap();
        assert_eq!(
            m.try_add(0x2000, 0, 1),
            Err(MapError::ZeroSize { base: 0x2000 })
        );
        assert_eq!(
            m.try_add(0xFFFF_FF00, 0x200, 1),
            Err(MapError::AddressWrap {
                base: 0xFFFF_FF00,
                size: 0x200
            })
        );
        let err = m.try_add(0x10FF, 0x100, 1).unwrap_err();
        assert!(matches!(err, MapError::Overlap { existing, .. }
            if existing.base == 0x1000 && existing.slave == 0));
        assert!(err.to_string().contains("overlaps"));
        // Failed adds leave the map unchanged.
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn region_touching_top_of_address_space_allowed() {
        let mut m = AddressMap::new();
        m.try_add(0xFFFF_0000, 0x1_0000, 0).unwrap();
        assert_eq!(m.decode(0xFFFF_FFFF), Some(0));
        // A region inside one that touches the top is still an overlap
        // (regression: the old wrapping check declared them disjoint).
        assert!(matches!(
            m.try_add(0xFFFF_8000, 0x100, 1),
            Err(MapError::Overlap { .. })
        ));
    }

    #[test]
    fn adjacent_regions_allowed() {
        let mut m = AddressMap::new();
        m.try_add(0x1000, 0x100, 0).unwrap();
        m.try_add(0x1100, 0x100, 1).unwrap();
        assert_eq!(m.decode(0x10FF), Some(0));
        assert_eq!(m.decode(0x1100), Some(1));
    }
}
