//! First-class bus masters.
//!
//! The interconnect arbitrates among *masters* — anything that drives the
//! req/ack handshake of a [`MasterIf`](crate::MasterIf). ISSs are one kind
//! of master (`dmi-iss`'s `CpuComponent`), but design-space exploration
//! wants others: DMA engines, traffic generators, accelerator front-ends.
//! The [`BusMaster`] trait is the registration contract a system builder
//! uses to wire such components without knowing their concrete types.
//!
//! A `BusMaster` value is a *specification*: the builder declares the
//! signal bundle, hands it over as a [`MasterWiring`], and the
//! specification turns itself into the kernel [`Component`] that drives
//! those wires. The component must follow the master handshake documented
//! on [`MasterIf`]: hold `req` with stable payload until `ack` is sampled,
//! then drop `req` for at least one cycle.

use std::any::Any;

use dmi_kernel::{Component, Wire};

use crate::bus::MasterIf;

/// The signals a non-CPU bus master is wired to.
#[derive(Debug, Clone, Copy)]
pub struct MasterWiring {
    /// System clock; the component is subscribed to its rising edge.
    pub clk: Wire,
    /// The master-side handshake bundle. The component drives `req`, `we`,
    /// `size`, `addr` and `wdata`, and samples `ack` / `rdata`.
    pub ports: MasterIf,
    /// 1-bit completion output. Drive it high (once) when the master has
    /// finished its programmed work; the system's halt monitor treats it
    /// like a CPU's `halted` wire. Masters that never finish (free-running
    /// traffic generators) simply leave it low.
    pub done: Wire,
}

/// Generic progress counters a bus-master component can report.
///
/// The concrete component keeps whatever richer statistics it wants; these
/// are the common denominators a run report can show for any master.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MasterStats {
    /// Rising clock edges observed while not done.
    pub active_cycles: u64,
    /// Edges spent with a request outstanding but unacknowledged.
    pub bus_wait_cycles: u64,
    /// Completed bus transactions.
    pub transactions: u64,
    /// Whether the master has raised its `done` output.
    pub done: bool,
}

/// Probe resolving a type-erased component back to its [`MasterStats`]
/// (the component arrives as `&dyn Any` from the simulator's store).
pub type MasterProbe = fn(&dyn Any) -> Option<MasterStats>;

/// A specification for a non-CPU bus master, consumed at system build time.
pub trait BusMaster: std::fmt::Debug {
    /// Short kind label used for signal prefixes and reports
    /// (e.g. `"dma"`).
    fn kind(&self) -> &'static str;

    /// Returns the probe that recovers [`MasterStats`] from the built
    /// component after (or during) a run. The default reports nothing.
    fn probe(&self) -> MasterProbe {
        |_| None
    }

    /// Consumes the specification and produces the kernel component wired
    /// to `wiring`. `name` is the instance name the builder assigned
    /// (unique per system, e.g. `"dma0"`).
    fn into_component(self: Box<Self>, name: String, wiring: MasterWiring) -> Box<dyn Component>;
}
