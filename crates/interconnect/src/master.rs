//! First-class bus masters.
//!
//! The interconnect arbitrates among *masters* — anything that drives the
//! req/ack handshake of a [`MasterIf`](crate::MasterIf). ISSs are one kind
//! of master (`dmi-iss`'s `CpuComponent`), but design-space exploration
//! wants others: DMA engines, traffic generators, accelerator front-ends.
//! The [`BusMaster`] trait is the registration contract a system builder
//! uses to wire such components without knowing their concrete types.
//!
//! A `BusMaster` value is a *specification*: the builder declares the
//! signal bundle, hands it over as a [`MasterWiring`], and the
//! specification turns itself into the kernel [`Component`] that drives
//! those wires. The component must follow the master handshake documented
//! on [`MasterIf`]: hold `req` with stable payload until `ack` is sampled,
//! then drop `req` for at least one cycle.

use std::any::Any;

use dmi_core::Status;
use dmi_kernel::{Component, Wire};

use crate::bus::MasterIf;

/// The signals a non-CPU bus master is wired to.
#[derive(Debug, Clone, Copy)]
pub struct MasterWiring {
    /// System clock; the component is subscribed to its rising edge.
    pub clk: Wire,
    /// The master-side handshake bundle. The component drives `req`, `we`,
    /// `size`, `addr` and `wdata`, and samples `ack` / `rdata`.
    pub ports: MasterIf,
    /// 1-bit completion output. Drive it high (once) when the master has
    /// finished its programmed work; the system's halt monitor treats it
    /// like a CPU's `halted` wire. Masters that never finish (free-running
    /// traffic generators) simply leave it low.
    pub done: Wire,
}

/// Generic progress counters a bus-master component can report.
///
/// The concrete component keeps whatever richer statistics it wants; these
/// are the common denominators a run report can show for any master.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MasterStats {
    /// Rising clock edges observed while not done.
    pub active_cycles: u64,
    /// Edges spent with a request outstanding but unacknowledged.
    pub bus_wait_cycles: u64,
    /// Completed bus transactions.
    pub transactions: u64,
    /// Whether the master has raised its `done` output.
    pub done: bool,
    /// Every non-`Ok` DSM status the master observed, bucketed by
    /// status code — errors are counted even when the master has no
    /// retry policy and aborts on the first one.
    pub error_statuses: ErrorCounts,
    /// Retry attempts the master made after non-`Ok` statuses.
    pub retries: u64,
    /// Protocol dialogues (allocs, burst chunks) that succeeded after
    /// at least one retry.
    pub recovered: u64,
    /// The unrecovered error the master gave up on, if any.
    pub fault: Option<MasterError>,
}

/// Histogram of observed DSM error statuses, indexed by the raw status
/// code (`Status as u32`); undecodable raw values (e.g. the
/// interconnect's decode-error pattern read where a STATUS was
/// expected) land in the last bucket.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ErrorCounts([u64; 16]);

impl ErrorCounts {
    /// Index of the bucket collecting raw values no [`Status`] decodes.
    pub const UNDECODED: usize = 15;

    /// Records one observation of `raw` (a value read from a STATUS
    /// register that was not `Status::Ok`).
    pub fn record(&mut self, raw: u32) {
        match Status::from_u32(raw) {
            Some(s) => self.0[(s as u32 as usize).min(Self::UNDECODED - 1)] += 1,
            None => self.0[Self::UNDECODED] += 1,
        }
    }

    /// Observations of one decoded status.
    pub fn get(&self, s: Status) -> u64 {
        self.0[s as u32 as usize]
    }

    /// Observations whose raw value decoded to no status.
    pub fn undecoded(&self) -> u64 {
        self.0[Self::UNDECODED]
    }

    /// Total error observations.
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    /// The raw per-bucket counters (snapshot serialization).
    pub fn as_array(&self) -> [u64; 16] {
        self.0
    }

    /// Rebuilds from raw per-bucket counters (snapshot restore).
    pub fn from_array(buckets: [u64; 16]) -> Self {
        ErrorCounts(buckets)
    }

    /// `(decoded status, count)` pairs for the non-zero buckets, plus
    /// `(None, count)` for the undecodable bucket when non-empty.
    pub fn iter(&self) -> impl Iterator<Item = (Option<Status>, u64)> + '_ {
        self.0
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n != 0)
            .map(|(i, &n)| (Status::from_u32(i as u32), n))
    }
}

/// A typed record of the error a master could not recover from:
/// surfaced in `MasterReport` (and `StopCause::Fault`) instead of a
/// silent stall or hang.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MasterError {
    /// The decoded status, when the raw value is a valid [`Status`].
    pub status: Option<Status>,
    /// The raw value read from the STATUS register.
    pub raw: u32,
    /// Retries spent on the failed dialogue before giving up.
    pub retries: u32,
    /// The master's pass counter when it gave up (master-specific).
    pub pass: u32,
    /// The master's word/chunk position when it gave up
    /// (master-specific).
    pub word: u32,
}

/// Probe resolving a type-erased component back to its [`MasterStats`]
/// (the component arrives as `&dyn Any` from the simulator's store).
pub type MasterProbe = fn(&dyn Any) -> Option<MasterStats>;

/// A specification for a non-CPU bus master, consumed at system build time.
pub trait BusMaster: std::fmt::Debug {
    /// Short kind label used for signal prefixes and reports
    /// (e.g. `"dma"`).
    fn kind(&self) -> &'static str;

    /// Returns the probe that recovers [`MasterStats`] from the built
    /// component after (or during) a run. The default reports nothing.
    fn probe(&self) -> MasterProbe {
        |_| None
    }

    /// The `(base, len_bytes)` address ranges this master is statically
    /// known to touch on the shared bus, before any cycle runs.
    ///
    /// The static analyzer checks every returned range against the
    /// system's address map (diagnostic `A004`: a footprint crossing an
    /// unmapped gap can only produce decode errors at run time). Masters
    /// whose traffic is data-dependent — CPUs, reactive bridges — return
    /// an empty list, which means "unknown", not "touches nothing".
    fn address_footprint(&self) -> Vec<(u32, u32)> {
        Vec::new()
    }

    /// Consumes the specification and produces the kernel component wired
    /// to `wiring`. `name` is the instance name the builder assigned
    /// (unique per system, e.g. `"dma0"`).
    fn into_component(self: Box<Self>, name: String, wiring: MasterWiring) -> Box<dyn Component>;
}
