//! Bus arbitration policies.

/// Arbitration policy of a shared resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ArbiterKind {
    /// Rotating priority: the master after the last grantee wins ties.
    #[default]
    RoundRobin,
    /// Fixed priority: the lowest index always wins.
    FixedPriority,
}

/// Stateful arbiter over `n` requesters.
#[derive(Debug, Clone)]
pub struct Arbiter {
    kind: ArbiterKind,
    n: usize,
    last_grant: usize,
    /// Per-requester grant counts (fairness diagnostics).
    grants: Vec<u64>,
}

impl Arbiter {
    /// Creates an arbiter over `n` requesters.
    pub fn new(kind: ArbiterKind, n: usize) -> Self {
        Arbiter {
            kind,
            n,
            last_grant: n.saturating_sub(1),
            grants: vec![0; n],
        }
    }

    /// Picks a winner among the asserted request lines, updating state.
    ///
    /// `requests[i]` is requester `i`'s line. Returns `None` when no line
    /// is asserted.
    pub fn pick(&mut self, requests: &[bool]) -> Option<usize> {
        debug_assert_eq!(requests.len(), self.n);
        let winner = match self.kind {
            ArbiterKind::FixedPriority => requests.iter().position(|&r| r)?,
            ArbiterKind::RoundRobin => {
                let start = (self.last_grant + 1) % self.n.max(1);
                (0..self.n)
                    .map(|k| (start + k) % self.n)
                    .find(|&i| requests[i])?
            }
        };
        self.last_grant = winner;
        self.grants[winner] += 1;
        Some(winner)
    }

    /// The policy in force.
    pub fn kind(&self) -> ArbiterKind {
        self.kind
    }

    /// Grant counts per requester.
    pub fn grants(&self) -> &[u64] {
        &self.grants
    }

    /// Serializes the rotation point and grant counters (the policy and
    /// width are construction-time configuration).
    pub(crate) fn save_state(&self, w: &mut dmi_kernel::StateWriter) {
        w.put_u64(self.last_grant as u64);
        w.put_u32(self.grants.len() as u32);
        for g in &self.grants {
            w.put_u64(*g);
        }
    }

    /// Restores state written by [`Arbiter::save_state`].
    pub(crate) fn load_state(
        &mut self,
        r: &mut dmi_kernel::StateReader<'_>,
    ) -> Result<(), dmi_kernel::SnapshotError> {
        use dmi_kernel::SnapshotError;
        let last = r.get_u64("arbiter last_grant")? as usize;
        if last >= self.n.max(1) {
            return Err(SnapshotError::Corrupt {
                context: format!("arbiter rotation point {last} of {}", self.n),
            });
        }
        let n = r.get_u32("arbiter width")? as usize;
        if n != self.grants.len() {
            return Err(SnapshotError::Mismatch {
                context: format!("snapshot arbiter has {n} requesters, target has {}", self.n),
            });
        }
        self.last_grant = last;
        for g in &mut self.grants {
            *g = r.get_u64("arbiter grant count")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_rotates_under_contention() {
        let mut a = Arbiter::new(ArbiterKind::RoundRobin, 3);
        let all = [true, true, true];
        let picks: Vec<_> = (0..6).map(|_| a.pick(&all).unwrap()).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(a.grants(), &[2, 2, 2]);
    }

    #[test]
    fn round_robin_skips_idle_masters() {
        let mut a = Arbiter::new(ArbiterKind::RoundRobin, 4);
        assert_eq!(a.pick(&[false, true, false, true]), Some(1));
        assert_eq!(a.pick(&[false, true, false, true]), Some(3));
        assert_eq!(a.pick(&[false, true, false, true]), Some(1));
        assert_eq!(a.pick(&[false, false, false, false]), None);
    }

    #[test]
    fn fixed_priority_starves_low_priority() {
        let mut a = Arbiter::new(ArbiterKind::FixedPriority, 3);
        for _ in 0..5 {
            assert_eq!(a.pick(&[true, true, true]), Some(0));
        }
        assert_eq!(a.pick(&[false, true, true]), Some(1));
        assert_eq!(a.grants(), &[5, 1, 0]);
        assert_eq!(a.kind(), ArbiterKind::FixedPriority);
    }
}
