//! The shared bus: N masters, P slaves, one transaction at a time.
//!
//! The bus is the contention point of the co-simulated MPSoC: it arbitrates
//! among requesting masters, decodes the winning address to a slave,
//! forwards the request over the slave handshake and routes the response
//! back. Wait states from slow slaves (e.g. a wrapper executing an
//! allocation) propagate to the master as delayed acknowledge — exactly
//! how the paper's ISSs experience memory latency.

use std::any::Any;

use dmi_core::{BusFault, FaultHook};
use dmi_kernel::{Component, Ctx, Simulator, Wake, Wire};

use crate::arbiter::{Arbiter, ArbiterKind};
use crate::map::AddressMap;

/// Bus-side view of one master's signals (the mirror of the CPU's
/// bus-master port bundle; construct it from the same wires).
#[derive(Debug, Clone, Copy)]
pub struct MasterIf {
    /// Request (in).
    pub req: Wire,
    /// Write enable (in).
    pub we: Wire,
    /// Size (in, 2 bits).
    pub size: Wire,
    /// Address (in, 32 bits).
    pub addr: Wire,
    /// Write data (in, 32 bits).
    pub wdata: Wire,
    /// Acknowledge (out).
    pub ack: Wire,
    /// Read data (out, 32 bits).
    pub rdata: Wire,
}

impl MasterIf {
    /// Declares a fresh master interface under `prefix` (tests and
    /// non-CPU masters; CPU-side bundles are declared by `dmi-iss`).
    pub fn declare(sim: &mut Simulator, prefix: &str) -> Self {
        MasterIf {
            req: sim.wire(format!("{prefix}.req"), 1),
            we: sim.wire(format!("{prefix}.we"), 1),
            size: sim.wire(format!("{prefix}.size"), 2),
            addr: sim.wire(format!("{prefix}.addr"), 32),
            wdata: sim.wire(format!("{prefix}.wdata"), 32),
            ack: sim.wire(format!("{prefix}.ack"), 1),
            rdata: sim.wire(format!("{prefix}.rdata"), 32),
        }
    }
}

/// Bus-side view of one slave's signals (mirror of the memory module's
/// slave port bundle; construct from the same wires).
#[derive(Debug, Clone, Copy)]
pub struct SlaveIf {
    /// Request (out).
    pub req: Wire,
    /// Write enable (out).
    pub we: Wire,
    /// Size (out, 2 bits).
    pub size: Wire,
    /// Address (out, 32 bits).
    pub addr: Wire,
    /// Write data (out, 32 bits).
    pub wdata: Wire,
    /// Granted master index (out, 4 bits).
    pub master: Wire,
    /// Acknowledge (in).
    pub ack: Wire,
    /// Read data (in, 32 bits).
    pub rdata: Wire,
}

impl SlaveIf {
    /// Declares a fresh slave interface under `prefix`.
    pub fn declare(sim: &mut Simulator, prefix: &str) -> Self {
        SlaveIf {
            req: sim.wire(format!("{prefix}.req"), 1),
            we: sim.wire(format!("{prefix}.we"), 1),
            size: sim.wire(format!("{prefix}.size"), 2),
            addr: sim.wire(format!("{prefix}.addr"), 32),
            wdata: sim.wire(format!("{prefix}.wdata"), 32),
            master: sim.wire(format!("{prefix}.master"), 4),
            ack: sim.wire(format!("{prefix}.ack"), 1),
            rdata: sim.wire(format!("{prefix}.rdata"), 32),
        }
    }
}

/// Data returned to a master whose address decodes to no slave.
pub const DECODE_ERROR_DATA: u32 = 0xDEAD_DEAD;

/// Configuration of a [`SharedBus`].
#[derive(Debug, Clone, Copy)]
pub struct BusConfig {
    /// Arbitration policy.
    pub arbiter: ArbiterKind,
    /// Extra cycles between grant and request forwarding (models a
    /// multi-cycle arbitration/address phase).
    pub arbitration_latency: u64,
    /// Back-to-back grant retention: when the arbiter picks the same
    /// master that completed the previous transaction and the address
    /// decodes to the same slave, skip the arbitration-latency phase and
    /// forward immediately — the grant is effectively held across the
    /// beats of a burst (AMBA-style locked/streamed transfers).
    ///
    /// This is a *timing-model* option: arbitration fairness is unchanged
    /// (the arbiter still picks every cycle), only the re-arbitration
    /// penalty for consecutive same-master/same-slave transfers is
    /// elided. Off by default so existing cycle traces stay comparable.
    pub burst_grant: bool,
}

impl Default for BusConfig {
    fn default() -> Self {
        BusConfig {
            arbiter: ArbiterKind::RoundRobin,
            arbitration_latency: 1,
            burst_grant: false,
        }
    }
}

/// Contention and throughput counters of the bus.
#[derive(Debug, Clone, Default)]
pub struct BusStats {
    /// Completed transactions.
    pub transactions: u64,
    /// Requests to unmapped addresses.
    pub decode_errors: u64,
    /// Cycles each master spent requesting without being served.
    pub master_wait_cycles: Vec<u64>,
    /// Grants per master.
    pub master_grants: Vec<u64>,
    /// Transactions per slave.
    pub slave_transactions: Vec<u64>,
    /// Cycles with a transaction in flight.
    pub busy_cycles: u64,
    /// Cycles with no request pending.
    pub idle_cycles: u64,
    /// Transactions that skipped re-arbitration through burst grant
    /// retention ([`BusConfig::burst_grant`]).
    pub retained_grants: u64,
}

impl BusStats {
    /// Bus utilisation: busy cycles over total observed cycles.
    pub fn utilisation(&self) -> f64 {
        let total = self.busy_cycles + self.idle_cycles;
        if total == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BusState {
    Idle,
    Arbitrate { master: usize, slave: usize, remaining: u64 },
    WaitSlave { master: usize, slave: usize },
    Complete { master: usize },
}

/// The shared-bus interconnect component.
#[derive(Debug)]
pub struct SharedBus {
    name: String,
    clk: Wire,
    masters: Vec<MasterIf>,
    slaves: Vec<SlaveIf>,
    map: AddressMap,
    arbiter: Arbiter,
    config: BusConfig,
    state: BusState,
    cooldown: Vec<bool>,
    wait_cycles: Vec<u64>,
    slave_transactions: Vec<u64>,
    transactions: u64,
    decode_errors: u64,
    busy_cycles: u64,
    idle_cycles: u64,
    /// `(master, slave)` of the last completed transaction, for
    /// [`BusConfig::burst_grant`] retention.
    last_route: Option<(usize, usize)>,
    /// Transactions that skipped re-arbitration via grant retention.
    retained_grants: u64,
    /// Reusable request-line buffer: the bus samples every master each
    /// clock cycle, so this must not allocate per cycle.
    req_scratch: Vec<bool>,
    /// Shared fault controller, when the system wired fault injection.
    /// `None` (the default) is the bit-identical pre-fault path.
    fault: Option<FaultHook>,
}

impl SharedBus {
    /// Creates a bus over the given interfaces and address map.
    pub fn new(
        name: impl Into<String>,
        clk: Wire,
        masters: Vec<MasterIf>,
        slaves: Vec<SlaveIf>,
        map: AddressMap,
        config: BusConfig,
    ) -> Self {
        let n = masters.len();
        let p = slaves.len();
        SharedBus {
            name: name.into(),
            clk,
            masters,
            slaves,
            map,
            arbiter: Arbiter::new(config.arbiter, n),
            config,
            state: BusState::Idle,
            cooldown: vec![false; n],
            wait_cycles: vec![0; n],
            slave_transactions: vec![0; p],
            transactions: 0,
            decode_errors: 0,
            busy_cycles: 0,
            idle_cycles: 0,
            last_route: None,
            retained_grants: 0,
            req_scratch: vec![false; n],
            fault: None,
        }
    }

    /// Installs a shared fault controller; consulted once per granted
    /// transaction (forced decode errors, grant-stall windows).
    pub fn set_fault_hook(&mut self, hook: FaultHook) {
        self.fault = Some(hook);
    }

    /// Contention statistics.
    pub fn stats(&self) -> BusStats {
        BusStats {
            transactions: self.transactions,
            decode_errors: self.decode_errors,
            master_wait_cycles: self.wait_cycles.clone(),
            master_grants: self.arbiter.grants().to_vec(),
            slave_transactions: self.slave_transactions.clone(),
            busy_cycles: self.busy_cycles,
            idle_cycles: self.idle_cycles,
            retained_grants: self.retained_grants,
        }
    }

    /// Samples live requests into the reusable scratch buffer
    /// (`self.req_scratch`), with post-ack cooldown filtering.
    /// Allocation-free: this runs every clock cycle.
    fn sample_requests(&mut self, ctx: &Ctx<'_>) {
        for i in 0..self.masters.len() {
            let req = ctx.read_bit(self.masters[i].req);
            if !req {
                self.cooldown[i] = false;
            }
            self.req_scratch[i] = req && !self.cooldown[i];
        }
    }

    fn count_waiters(wait_cycles: &mut [u64], reqs: &[bool], served: Option<usize>) {
        for (i, &r) in reqs.iter().enumerate() {
            if r && Some(i) != served {
                wait_cycles[i] += 1;
            }
        }
    }

    fn forward(&mut self, ctx: &mut Ctx<'_>, master: usize, slave: usize) {
        let m = self.masters[master];
        let s = self.slaves[slave];
        ctx.write_bit(s.req, true);
        ctx.write_bit(s.we, ctx.read_bit(m.we));
        ctx.write(s.size, ctx.read(m.size));
        ctx.write(s.addr, ctx.read(m.addr));
        ctx.write(s.wdata, ctx.read(m.wdata));
        ctx.write(s.master, master as u64);
        self.state = BusState::WaitSlave { master, slave };
    }
}

impl Component for SharedBus {
    fn name(&self) -> &str {
        &self.name
    }

    fn wake(&mut self, ctx: &mut Ctx<'_>) {
        match ctx.cause() {
            Wake::Start => {
                for s in &self.slaves {
                    ctx.write_bit(s.req, false);
                }
                for m in &self.masters {
                    ctx.write_bit(m.ack, false);
                }
            }
            Wake::Signal(_) if ctx.is_signal(self.clk) => {
                self.sample_requests(ctx);
                match self.state {
                    BusState::Idle => {
                        match self.arbiter.pick(&self.req_scratch) {
                            Some(winner) => {
                                self.busy_cycles += 1;
                                Self::count_waiters(
                                    &mut self.wait_cycles,
                                    &self.req_scratch,
                                    Some(winner),
                                );
                                let addr = ctx.read(self.masters[winner].addr) as u32;
                                let f = match &self.fault {
                                    Some(hook) => hook.borrow_mut().bus_access(winner),
                                    None => BusFault::default(),
                                };
                                match self.map.decode(addr) {
                                    Some(slave) if !f.decode_error => {
                                        // With zero arbitration latency there
                                        // is no phase to skip: retention would
                                        // change nothing, so don't count it.
                                        let retained = self.config.burst_grant
                                            && self.config.arbitration_latency > 0
                                            && self.last_route == Some((winner, slave));
                                        if retained {
                                            self.retained_grants += 1;
                                        }
                                        let latency = if retained {
                                            0
                                        } else {
                                            self.config.arbitration_latency
                                        };
                                        // A grant-stall fault stretches the
                                        // arbitration phase.
                                        let total = latency + f.stall_cycles;
                                        if total == 0 {
                                            self.forward(ctx, winner, slave);
                                        } else {
                                            self.state = BusState::Arbitrate {
                                                master: winner,
                                                slave,
                                                remaining: total,
                                            };
                                        }
                                    }
                                    _ => {
                                        self.decode_errors += 1;
                                        self.last_route = None;
                                        let m = self.masters[winner];
                                        ctx.write_bit(m.ack, true);
                                        ctx.write(m.rdata, DECODE_ERROR_DATA as u64);
                                        self.state = BusState::Complete { master: winner };
                                    }
                                }
                            }
                            None => self.idle_cycles += 1,
                        }
                    }
                    BusState::Arbitrate {
                        master,
                        slave,
                        remaining,
                    } => {
                        self.busy_cycles += 1;
                        Self::count_waiters(&mut self.wait_cycles, &self.req_scratch, Some(master));
                        if remaining <= 1 {
                            self.forward(ctx, master, slave);
                        } else {
                            self.state = BusState::Arbitrate {
                                master,
                                slave,
                                remaining: remaining - 1,
                            };
                        }
                    }
                    BusState::WaitSlave { master, slave } => {
                        self.busy_cycles += 1;
                        Self::count_waiters(&mut self.wait_cycles, &self.req_scratch, Some(master));
                        let s = self.slaves[slave];
                        if ctx.read_bit(s.ack) {
                            let data = ctx.read(s.rdata);
                            ctx.write_bit(s.req, false);
                            let m = self.masters[master];
                            ctx.write_bit(m.ack, true);
                            ctx.write(m.rdata, data);
                            self.slave_transactions[slave] += 1;
                            self.last_route = Some((master, slave));
                            self.state = BusState::Complete { master };
                        }
                    }
                    BusState::Complete { master } => {
                        self.busy_cycles += 1;
                        Self::count_waiters(&mut self.wait_cycles, &self.req_scratch, Some(master));
                        ctx.write_bit(self.masters[master].ack, false);
                        self.cooldown[master] = true;
                        self.transactions += 1;
                        self.state = BusState::Idle;
                    }
                }
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn save_state(&self, w: &mut dmi_kernel::StateWriter) {
        match self.state {
            BusState::Idle => w.put_u8(0),
            BusState::Arbitrate {
                master,
                slave,
                remaining,
            } => {
                w.put_u8(1);
                w.put_u64(master as u64);
                w.put_u64(slave as u64);
                w.put_u64(remaining);
            }
            BusState::WaitSlave { master, slave } => {
                w.put_u8(2);
                w.put_u64(master as u64);
                w.put_u64(slave as u64);
            }
            BusState::Complete { master } => {
                w.put_u8(3);
                w.put_u64(master as u64);
            }
        }
        w.put_u32(self.cooldown.len() as u32);
        for c in &self.cooldown {
            w.put_bool(*c);
        }
        for wc in &self.wait_cycles {
            w.put_u64(*wc);
        }
        w.put_u32(self.slave_transactions.len() as u32);
        for st in &self.slave_transactions {
            w.put_u64(*st);
        }
        w.put_u64(self.transactions);
        w.put_u64(self.decode_errors);
        w.put_u64(self.busy_cycles);
        w.put_u64(self.idle_cycles);
        match self.last_route {
            Some((m, s)) => {
                w.put_bool(true);
                w.put_u64(m as u64);
                w.put_u64(s as u64);
            }
            None => w.put_bool(false),
        }
        w.put_u64(self.retained_grants);
        self.arbiter.save_state(w);
    }

    fn load_state(
        &mut self,
        r: &mut dmi_kernel::StateReader<'_>,
    ) -> Result<(), dmi_kernel::SnapshotError> {
        use dmi_kernel::SnapshotError;
        let n = self.masters.len();
        let p = self.slaves.len();
        let master_bound = |m: u64| -> Result<usize, SnapshotError> {
            if (m as usize) < n {
                Ok(m as usize)
            } else {
                Err(SnapshotError::Corrupt {
                    context: format!("bus state names master {m} of {n}"),
                })
            }
        };
        let slave_bound = |s: u64| -> Result<usize, SnapshotError> {
            if (s as usize) < p {
                Ok(s as usize)
            } else {
                Err(SnapshotError::Corrupt {
                    context: format!("bus state names slave {s} of {p}"),
                })
            }
        };
        self.state = match r.get_u8("bus fsm")? {
            0 => BusState::Idle,
            1 => BusState::Arbitrate {
                master: master_bound(r.get_u64("bus fsm master")?)?,
                slave: slave_bound(r.get_u64("bus fsm slave")?)?,
                remaining: r.get_u64("bus fsm remaining")?,
            },
            2 => BusState::WaitSlave {
                master: master_bound(r.get_u64("bus fsm master")?)?,
                slave: slave_bound(r.get_u64("bus fsm slave")?)?,
            },
            3 => BusState::Complete {
                master: master_bound(r.get_u64("bus fsm master")?)?,
            },
            t => {
                return Err(SnapshotError::Corrupt {
                    context: format!("bus: unknown fsm tag {t}"),
                })
            }
        };
        let cd = r.get_u32("bus cooldown count")? as usize;
        if cd != n {
            return Err(SnapshotError::Mismatch {
                context: format!("snapshot bus has {cd} masters, target has {n}"),
            });
        }
        for c in &mut self.cooldown {
            *c = r.get_bool("bus cooldown flag")?;
        }
        for wc in &mut self.wait_cycles {
            *wc = r.get_u64("bus wait_cycles")?;
        }
        let st = r.get_u32("bus slave count")? as usize;
        if st != p {
            return Err(SnapshotError::Mismatch {
                context: format!("snapshot bus has {st} slaves, target has {p}"),
            });
        }
        for s in &mut self.slave_transactions {
            *s = r.get_u64("bus slave_transactions")?;
        }
        self.transactions = r.get_u64("bus transactions")?;
        self.decode_errors = r.get_u64("bus decode_errors")?;
        self.busy_cycles = r.get_u64("bus busy_cycles")?;
        self.idle_cycles = r.get_u64("bus idle_cycles")?;
        self.last_route = if r.get_bool("bus last_route flag")? {
            Some((
                master_bound(r.get_u64("bus last_route master")?)?,
                slave_bound(r.get_u64("bus last_route slave")?)?,
            ))
        } else {
            None
        };
        self.retained_grants = r.get_u64("bus retained_grants")?;
        self.arbiter.load_state(r)
    }
}
