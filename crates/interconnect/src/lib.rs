//! # dmi-interconnect — cycle-true interconnect models
//!
//! The interconnect of the co-simulated MPSoC: masters (ISSs) on one side,
//! shared-memory modules on the other. Two topologies:
//!
//! * [`SharedBus`] — a single-transaction bus with pluggable arbitration
//!   ([`ArbiterKind`]); the topology of the paper's experiments;
//! * [`Crossbar`] — per-slave arbitration with parallel paths, used in the
//!   ablation experiments to separate interconnect contention from memory
//!   model cost.
//!
//! Address decode is handled by an explicit [`AddressMap`] — the realization
//! of the paper's `sm_addr` field selecting the memory module.
//!
//! The handshake protocol matches `dmi-iss` masters and `dmi-core` slaves:
//! a master holds `req` with stable payload until it samples `ack`; slaves
//! assert `ack` for exactly one cycle with `rdata` valid, then wait for
//! `req` to fall before accepting the next transaction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arbiter;
mod bus;
mod crossbar;
mod map;
mod master;

pub use arbiter::{Arbiter, ArbiterKind};
pub use bus::{BusConfig, BusStats, MasterIf, SharedBus, SlaveIf, DECODE_ERROR_DATA};
pub use crossbar::{Crossbar, CrossbarConfig};
pub use map::{AddressMap, MapError, Region};
pub use master::{BusMaster, ErrorCounts, MasterError, MasterProbe, MasterStats, MasterWiring};
