//! Crossbar interconnect: parallel master→slave paths.
//!
//! Where the shared bus serialises every transaction, the crossbar gives
//! each slave its own arbiter, so transactions to *different* slaves
//! proceed concurrently. With the paper's headline experiment in mind
//! (4 ISSs × 4 memories), the crossbar is the ablation point showing how
//! much of the observed degradation is interconnect contention rather than
//! wrapper cost.

use std::any::Any;

use dmi_core::{BusFault, FaultHook};
use dmi_kernel::{Component, Ctx, Wake, Wire};

use crate::arbiter::{Arbiter, ArbiterKind};
use crate::bus::{BusStats, MasterIf, SlaveIf, DECODE_ERROR_DATA};
use crate::map::AddressMap;

/// Configuration of a [`Crossbar`].
#[derive(Debug, Clone, Copy)]
pub struct CrossbarConfig {
    /// Per-lane arbitration policy.
    pub arbiter: ArbiterKind,
    /// Extra cycles between a lane's grant and request forwarding
    /// (models a multi-cycle arbitration/address phase). Zero — the
    /// default — forwards in the grant cycle, the crossbar's original
    /// timing.
    pub arbitration_latency: u64,
    /// Back-to-back grant retention, ported from
    /// [`BusConfig::burst_grant`](crate::BusConfig::burst_grant): when a
    /// lane's arbiter picks the same master that completed the lane's
    /// previous transaction, the arbitration-latency phase is skipped —
    /// the grant is effectively held across the beats of a burst.
    /// Timing-model option only; fairness is unchanged. Off by default.
    pub burst_grant: bool,
}

impl Default for CrossbarConfig {
    fn default() -> Self {
        CrossbarConfig {
            arbiter: ArbiterKind::RoundRobin,
            arbitration_latency: 0,
            burst_grant: false,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LaneState {
    Idle,
    Arbitrate { master: usize, remaining: u64 },
    WaitSlave { master: usize },
    Complete { master: usize },
}

/// The crossbar interconnect component.
#[derive(Debug)]
pub struct Crossbar {
    name: String,
    clk: Wire,
    masters: Vec<MasterIf>,
    slaves: Vec<SlaveIf>,
    map: AddressMap,
    config: CrossbarConfig,
    lanes: Vec<LaneState>,
    arbiters: Vec<Arbiter>,
    /// Master that completed each lane's previous transaction, for
    /// [`CrossbarConfig::burst_grant`] retention.
    lane_last: Vec<Option<usize>>,
    /// Transactions that skipped re-arbitration via grant retention.
    retained_grants: u64,
    cooldown: Vec<bool>,
    /// Master currently being served (by any lane or error path).
    in_service: Vec<bool>,
    wait_cycles: Vec<u64>,
    slave_transactions: Vec<u64>,
    transactions: u64,
    decode_errors: u64,
    busy_cycles: u64,
    idle_cycles: u64,
    /// Error completions pending: master indices acked this cycle.
    error_complete: Vec<usize>,
    /// Reusable request-line buffers: the crossbar samples every master
    /// each clock cycle, so these must not allocate per cycle.
    req_scratch: Vec<bool>,
    lane_scratch: Vec<bool>,
    /// Shared fault controller, when the system wired fault injection.
    /// `None` (the default) is the bit-identical pre-fault path.
    fault: Option<FaultHook>,
}

impl Crossbar {
    /// Creates a crossbar with default timing (forward in the grant
    /// cycle, no grant retention).
    pub fn new(
        name: impl Into<String>,
        clk: Wire,
        masters: Vec<MasterIf>,
        slaves: Vec<SlaveIf>,
        map: AddressMap,
        arbiter: ArbiterKind,
    ) -> Self {
        Self::with_config(
            name,
            clk,
            masters,
            slaves,
            map,
            CrossbarConfig {
                arbiter,
                ..CrossbarConfig::default()
            },
        )
    }

    /// Creates a crossbar over the given interfaces and address map.
    pub fn with_config(
        name: impl Into<String>,
        clk: Wire,
        masters: Vec<MasterIf>,
        slaves: Vec<SlaveIf>,
        map: AddressMap,
        config: CrossbarConfig,
    ) -> Self {
        let n = masters.len();
        let p = slaves.len();
        Crossbar {
            name: name.into(),
            clk,
            masters,
            slaves,
            map,
            config,
            lanes: vec![LaneState::Idle; p],
            arbiters: (0..p).map(|_| Arbiter::new(config.arbiter, n)).collect(),
            lane_last: vec![None; p],
            retained_grants: 0,
            cooldown: vec![false; n],
            in_service: vec![false; n],
            wait_cycles: vec![0; n],
            slave_transactions: vec![0; p],
            transactions: 0,
            decode_errors: 0,
            busy_cycles: 0,
            idle_cycles: 0,
            error_complete: Vec::new(),
            req_scratch: vec![false; n],
            lane_scratch: vec![false; n],
            fault: None,
        }
    }

    /// Installs a shared fault controller; consulted once per granted
    /// transaction (forced decode errors, grant-stall windows).
    pub fn set_fault_hook(&mut self, hook: FaultHook) {
        self.fault = Some(hook);
    }

    /// Contention statistics (same shape as the shared bus for easy
    /// comparison; grants are summed across lane arbiters).
    pub fn stats(&self) -> BusStats {
        let n = self.masters.len();
        let mut grants = vec![0u64; n];
        for a in &self.arbiters {
            for (i, g) in a.grants().iter().enumerate() {
                grants[i] += g;
            }
        }
        BusStats {
            transactions: self.transactions,
            decode_errors: self.decode_errors,
            master_wait_cycles: self.wait_cycles.clone(),
            master_grants: grants,
            slave_transactions: self.slave_transactions.clone(),
            busy_cycles: self.busy_cycles,
            idle_cycles: self.idle_cycles,
            retained_grants: self.retained_grants,
        }
    }

    /// Forwards `master`'s request onto `lane`'s slave.
    fn forward(&mut self, ctx: &mut Ctx<'_>, lane: usize, master: usize) {
        let m = self.masters[master];
        let s = self.slaves[lane];
        ctx.write_bit(s.req, true);
        ctx.write_bit(s.we, ctx.read_bit(m.we));
        ctx.write(s.size, ctx.read(m.size));
        ctx.write(s.addr, ctx.read(m.addr));
        ctx.write(s.wdata, ctx.read(m.wdata));
        ctx.write(s.master, master as u64);
        self.lanes[lane] = LaneState::WaitSlave { master };
    }
}

impl Component for Crossbar {
    fn name(&self) -> &str {
        &self.name
    }

    fn wake(&mut self, ctx: &mut Ctx<'_>) {
        match ctx.cause() {
            Wake::Start => {
                for s in &self.slaves {
                    ctx.write_bit(s.req, false);
                }
                for m in &self.masters {
                    ctx.write_bit(m.ack, false);
                }
            }
            Wake::Signal(_) if ctx.is_signal(self.clk) => {
                let n = self.masters.len();
                // Refresh request view and cooldowns (reusing the scratch
                // buffer: no allocation on the per-cycle path).
                let mut reqs = std::mem::take(&mut self.req_scratch);
                for (i, rq) in reqs.iter_mut().enumerate() {
                    let r = ctx.read_bit(self.masters[i].req);
                    if !r {
                        self.cooldown[i] = false;
                    }
                    *rq = r && !self.cooldown[i] && !self.in_service[i];
                }

                // Finish error completions from last cycle.
                for master in std::mem::take(&mut self.error_complete) {
                    ctx.write_bit(self.masters[master].ack, false);
                    self.cooldown[master] = true;
                    self.in_service[master] = false;
                    self.transactions += 1;
                }

                // Route decode errors (not tied to any lane).
                #[allow(clippy::needless_range_loop)] // reqs[i] is also written
                for i in 0..n {
                    if reqs[i] {
                        let addr = ctx.read(self.masters[i].addr) as u32;
                        if self.map.decode(addr).is_none() {
                            self.decode_errors += 1;
                            ctx.write_bit(self.masters[i].ack, true);
                            ctx.write(self.masters[i].rdata, DECODE_ERROR_DATA as u64);
                            self.in_service[i] = true;
                            self.error_complete.push(i);
                            reqs[i] = false;
                        }
                    }
                }

                let mut any_busy = false;
                for lane in 0..self.lanes.len() {
                    match self.lanes[lane] {
                        LaneState::Idle => {
                            // Requests targeting this lane's slave.
                            let mut lane_reqs = std::mem::take(&mut self.lane_scratch);
                            for (i, lr) in lane_reqs.iter_mut().enumerate() {
                                *lr = reqs[i] && {
                                    let addr = ctx.read(self.masters[i].addr) as u32;
                                    self.map.decode(addr) == Some(lane)
                                };
                            }
                            let pick = self.arbiters[lane].pick(&lane_reqs);
                            self.lane_scratch = lane_reqs;
                            if let Some(winner) = pick {
                                any_busy = true;
                                reqs[winner] = false;
                                self.in_service[winner] = true;
                                let f = match &self.fault {
                                    Some(hook) => hook.borrow_mut().bus_access(winner),
                                    None => BusFault::default(),
                                };
                                if f.decode_error {
                                    // Forced decode error: ack with the
                                    // error pattern, slave never sees it.
                                    self.decode_errors += 1;
                                    ctx.write_bit(self.masters[winner].ack, true);
                                    ctx.write(
                                        self.masters[winner].rdata,
                                        DECODE_ERROR_DATA as u64,
                                    );
                                    self.error_complete.push(winner);
                                    continue;
                                }
                                // Grant retention (with zero latency there
                                // is no phase to skip — don't count it).
                                let retained = self.config.burst_grant
                                    && self.config.arbitration_latency > 0
                                    && self.lane_last[lane] == Some(winner);
                                if retained {
                                    self.retained_grants += 1;
                                }
                                let latency = if retained {
                                    0
                                } else {
                                    self.config.arbitration_latency
                                };
                                // A grant-stall fault stretches the
                                // arbitration phase.
                                let total = latency + f.stall_cycles;
                                if total == 0 {
                                    self.forward(ctx, lane, winner);
                                } else {
                                    self.lanes[lane] = LaneState::Arbitrate {
                                        master: winner,
                                        remaining: total,
                                    };
                                }
                            }
                        }
                        LaneState::Arbitrate { master, remaining } => {
                            any_busy = true;
                            if remaining <= 1 {
                                self.forward(ctx, lane, master);
                            } else {
                                self.lanes[lane] = LaneState::Arbitrate {
                                    master,
                                    remaining: remaining - 1,
                                };
                            }
                        }
                        LaneState::WaitSlave { master } => {
                            any_busy = true;
                            let s = self.slaves[lane];
                            if ctx.read_bit(s.ack) {
                                let data = ctx.read(s.rdata);
                                ctx.write_bit(s.req, false);
                                let m = self.masters[master];
                                ctx.write_bit(m.ack, true);
                                ctx.write(m.rdata, data);
                                self.slave_transactions[lane] += 1;
                                self.lanes[lane] = LaneState::Complete { master };
                            }
                        }
                        LaneState::Complete { master } => {
                            any_busy = true;
                            ctx.write_bit(self.masters[master].ack, false);
                            self.cooldown[master] = true;
                            self.in_service[master] = false;
                            self.transactions += 1;
                            self.lane_last[lane] = Some(master);
                            self.lanes[lane] = LaneState::Idle;
                        }
                    }
                }

                // Wait accounting: requesting but not in service.
                for (i, &rq) in reqs.iter().enumerate() {
                    if rq && !self.in_service[i] {
                        self.wait_cycles[i] += 1;
                    }
                }
                if any_busy {
                    self.busy_cycles += 1;
                } else {
                    self.idle_cycles += 1;
                }
                self.req_scratch = reqs;
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn save_state(&self, w: &mut dmi_kernel::StateWriter) {
        w.put_u32(self.lanes.len() as u32);
        for lane in &self.lanes {
            match *lane {
                LaneState::Idle => w.put_u8(0),
                LaneState::Arbitrate { master, remaining } => {
                    w.put_u8(1);
                    w.put_u64(master as u64);
                    w.put_u64(remaining);
                }
                LaneState::WaitSlave { master } => {
                    w.put_u8(2);
                    w.put_u64(master as u64);
                }
                LaneState::Complete { master } => {
                    w.put_u8(3);
                    w.put_u64(master as u64);
                }
            }
        }
        for a in &self.arbiters {
            a.save_state(w);
        }
        for last in &self.lane_last {
            match last {
                Some(m) => {
                    w.put_bool(true);
                    w.put_u64(*m as u64);
                }
                None => w.put_bool(false),
            }
        }
        w.put_u64(self.retained_grants);
        w.put_u32(self.cooldown.len() as u32);
        for c in &self.cooldown {
            w.put_bool(*c);
        }
        for s in &self.in_service {
            w.put_bool(*s);
        }
        for wc in &self.wait_cycles {
            w.put_u64(*wc);
        }
        for st in &self.slave_transactions {
            w.put_u64(*st);
        }
        w.put_u64(self.transactions);
        w.put_u64(self.decode_errors);
        w.put_u64(self.busy_cycles);
        w.put_u64(self.idle_cycles);
        w.put_u32(self.error_complete.len() as u32);
        for m in &self.error_complete {
            w.put_u64(*m as u64);
        }
    }

    fn load_state(
        &mut self,
        r: &mut dmi_kernel::StateReader<'_>,
    ) -> Result<(), dmi_kernel::SnapshotError> {
        use dmi_kernel::SnapshotError;
        let n = self.masters.len();
        let master_bound = |m: u64| -> Result<usize, SnapshotError> {
            if (m as usize) < n {
                Ok(m as usize)
            } else {
                Err(SnapshotError::Corrupt {
                    context: format!("crossbar state names master {m} of {n}"),
                })
            }
        };
        let lanes = r.get_u32("crossbar lane count")? as usize;
        if lanes != self.lanes.len() {
            return Err(SnapshotError::Mismatch {
                context: format!(
                    "snapshot crossbar has {lanes} lanes, target has {}",
                    self.lanes.len()
                ),
            });
        }
        for lane in &mut self.lanes {
            *lane = match r.get_u8("crossbar lane fsm")? {
                0 => LaneState::Idle,
                1 => LaneState::Arbitrate {
                    master: master_bound(r.get_u64("crossbar lane master")?)?,
                    remaining: r.get_u64("crossbar lane remaining")?,
                },
                2 => LaneState::WaitSlave {
                    master: master_bound(r.get_u64("crossbar lane master")?)?,
                },
                3 => LaneState::Complete {
                    master: master_bound(r.get_u64("crossbar lane master")?)?,
                },
                t => {
                    return Err(SnapshotError::Corrupt {
                        context: format!("crossbar: unknown lane fsm tag {t}"),
                    })
                }
            };
        }
        for a in &mut self.arbiters {
            a.load_state(r)?;
        }
        for last in &mut self.lane_last {
            *last = if r.get_bool("crossbar lane_last flag")? {
                Some(master_bound(r.get_u64("crossbar lane_last master")?)?)
            } else {
                None
            };
        }
        self.retained_grants = r.get_u64("crossbar retained_grants")?;
        let cd = r.get_u32("crossbar master count")? as usize;
        if cd != n {
            return Err(SnapshotError::Mismatch {
                context: format!("snapshot crossbar has {cd} masters, target has {n}"),
            });
        }
        for c in &mut self.cooldown {
            *c = r.get_bool("crossbar cooldown flag")?;
        }
        for s in &mut self.in_service {
            *s = r.get_bool("crossbar in_service flag")?;
        }
        for wc in &mut self.wait_cycles {
            *wc = r.get_u64("crossbar wait_cycles")?;
        }
        for st in &mut self.slave_transactions {
            *st = r.get_u64("crossbar slave_transactions")?;
        }
        self.transactions = r.get_u64("crossbar transactions")?;
        self.decode_errors = r.get_u64("crossbar decode_errors")?;
        self.busy_cycles = r.get_u64("crossbar busy_cycles")?;
        self.idle_cycles = r.get_u64("crossbar idle_cycles")?;
        let ec = r.get_u32("crossbar error_complete count")? as usize;
        self.error_complete.clear();
        for _ in 0..ec {
            self.error_complete
                .push(master_bound(r.get_u64("crossbar error_complete master")?)?);
        }
        Ok(())
    }
}
