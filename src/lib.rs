//! # dmi-sim — fast dynamic memory integration for MPSoC co-simulation
//!
//! A Rust reproduction of O. Villa, P. Schaumont, I. Verbauwhede,
//! M. Monchiero, G. Palermo, *"Fast Dynamic Memory Integration in
//! Co-Simulation Frameworks for Multiprocessor System on-Chip"* (DATE 2005).
//!
//! This facade crate re-exports the full stack:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`kernel`] | `dmi-kernel` | discrete-event simulation kernel (SystemC substitute) |
//! | [`isa`] | `dmi-isa` | SimARM ISA, assembler, disassembler |
//! | [`iss`] | `dmi-iss` | cycle-approximate instruction-set simulator |
//! | [`interconnect`] | `dmi-interconnect` | shared bus / crossbar |
//! | [`core`] | `dmi-core` | **the paper's dynamic memory wrapper** + baselines |
//! | [`sw`] | `dmi-sw` | DSM driver API and workload programs |
//! | [`gsm`] | `dmi-gsm` | GSM-style encoder workload (reference + ISS) |
//! | [`masters`] | `dmi-masters` | non-CPU bus masters (DMA / traffic generators) |
//! | [`system`] | `dmi-system` | system builder, run control, reports, experiments |
//!
//! See `README.md` for a guided tour, `DESIGN.md` for the architecture and
//! `EXPERIMENTS.md` for the reproduced evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use dmi_sim::sw::{workloads, WorkloadCfg};
//! use dmi_sim::system::{mem_base, McSystem, SystemConfig};
//!
//! let cfg = WorkloadCfg {
//!     mem_base: mem_base(0),
//!     iterations: 8,
//!     ..WorkloadCfg::default()
//! };
//! let mut system = McSystem::build(SystemConfig {
//!     programs: vec![workloads::alloc_churn(&cfg)],
//!     ..SystemConfig::default()
//! });
//! let report = system.run(1_000_000);
//! assert!(report.all_ok());
//! println!("{}", report.summary());
//! ```

#![forbid(unsafe_code)]

pub use dmi_core as core;
pub use dmi_gsm as gsm;
pub use dmi_interconnect as interconnect;
pub use dmi_isa as isa;
pub use dmi_iss as iss;
pub use dmi_kernel as kernel;
pub use dmi_masters as masters;
pub use dmi_sw as sw;
pub use dmi_system as system;
