//! Full-stack integration tests through the facade crate: text assembly →
//! ISS → bus → wrapper, model interchangeability, and tracing.

use dmi_sim::core::{SimHeapConfig, WrapperConfig};
use dmi_sim::isa::assemble_text;
use dmi_sim::sw::{workloads, WorkloadCfg};
use dmi_sim::system::{mem_base, McSystem, MemModelKind, SystemConfig};

/// A program written in assembly *text* drives the DSM protocol directly —
/// the whole toolchain in one test.
#[test]
fn text_assembled_program_uses_the_wrapper() {
    let src = format!(
        r#"
        .equ MEM,    {:#x}
        .equ CMD,    0x00
        .equ ARG0,   0x04
        .equ ARG1,   0x08
        .equ ARG2,   0x0C
        .equ RESULT, 0x14
        .equ ALLOC,  1
        .equ WRITE,  3
        .equ READ,   4

            li   r4, #MEM
            ; vptr = alloc(6 words of u32)
            li   r0, #6
            str  r0, [r4, #ARG0]
            li   r0, #2
            str  r0, [r4, #ARG1]
            li   r0, #ALLOC
            str  r0, [r4, #CMD]
            ldr  r5, [r4, #RESULT]     ; vptr
            ; write 0x77 at vptr+8
            add  r0, r5, #8
            str  r0, [r4, #ARG0]
            li   r0, #0x77
            str  r0, [r4, #ARG1]
            li   r0, #2
            str  r0, [r4, #ARG2]
            li   r0, #WRITE
            str  r0, [r4, #CMD]
            ; read it back
            add  r0, r5, #8
            str  r0, [r4, #ARG0]
            li   r0, #2
            str  r0, [r4, #ARG2]
            li   r0, #READ
            str  r0, [r4, #CMD]
            ldr  r0, [r4, #RESULT]
            ; exit code = value - 0x77 (0 on success)
            sub  r0, r0, #0x77
            swi  #0
    "#,
        mem_base(0)
    );
    let prog = assemble_text(&src, 0).expect("assembles");
    let mut sys = McSystem::build(SystemConfig {
        programs: vec![prog],
        ..SystemConfig::default()
    });
    let report = sys.run(1_000_000);
    assert!(report.all_ok(), "{}", report.summary());
    assert_eq!(report.mems[0].backend.allocs, 1);
    assert_eq!(report.mems[0].backend.reads, 1);
}

/// The same workload binary runs unmodified on both dynamic memory models.
#[test]
fn workloads_are_model_portable() {
    let wl = WorkloadCfg {
        mem_base: mem_base(0),
        iterations: 12,
        ..WorkloadCfg::default()
    };
    let prog = workloads::alloc_churn(&wl);
    for kind in [
        MemModelKind::Wrapper(WrapperConfig::default()),
        MemModelKind::SimHeap(SimHeapConfig::default()),
    ] {
        let mut sys = McSystem::build(SystemConfig {
            programs: vec![prog.clone()],
            memories: vec![kind],
            ..SystemConfig::default()
        });
        let report = sys.run(100_000_000);
        assert!(report.all_ok(), "{:?}: {}", kind.name(), report.summary());
    }
}

/// Identical configurations produce identical cycle counts AND identical
/// VCD traces — whole-stack determinism.
#[test]
fn full_stack_determinism_with_tracing() {
    let run = || {
        let wl = WorkloadCfg {
            mem_base: mem_base(0),
            iterations: 5,
            ..WorkloadCfg::default()
        };
        let mut sys = McSystem::build(SystemConfig {
            programs: vec![workloads::alloc_churn(&wl); 2],
            ..SystemConfig::default()
        });
        sys.simulator_mut()
            .trace_matching(|n| n.starts_with("mem0.s"));
        let report = sys.run(100_000_000);
        assert!(report.all_ok());
        let vcd = sys
            .simulator()
            .tracer()
            .to_vcd(sys.simulator().signals(), sys.simulator().time());
        (report.sim_cycles, vcd)
    };
    let (c1, v1) = run();
    let (c2, v2) = run();
    assert_eq!(c1, c2);
    assert_eq!(v1, v2);
}

/// The wrapper's denial path propagates to software: exhausting the finite
/// memory yields the null vptr, and the workload's check path catches it.
#[test]
fn finite_memory_denial_reaches_software() {
    let wl = WorkloadCfg {
        mem_base: mem_base(0),
        iterations: 4,
        buf_words: 200, // 800 bytes per allocation
        ..WorkloadCfg::default()
    };
    // Capacity for only one live allocation; churn frees each time, so it
    // still succeeds.
    let mut sys = McSystem::build(SystemConfig {
        programs: vec![workloads::alloc_churn(&wl)],
        memories: vec![MemModelKind::Wrapper(WrapperConfig {
            capacity: 1024,
            ..WrapperConfig::default()
        })],
        ..SystemConfig::default()
    });
    let report = sys.run(100_000_000);
    assert!(report.all_ok(), "{}", report.summary());

    // Two concurrent churners cannot both hold 800 bytes: one gets denied
    // at some point and exits through the fail path (exit code 1).
    let mut sys = McSystem::build(SystemConfig {
        programs: vec![workloads::alloc_churn(&wl); 2],
        memories: vec![MemModelKind::Wrapper(WrapperConfig {
            capacity: 1024,
            ..WrapperConfig::default()
        })],
        ..SystemConfig::default()
    });
    let report = sys.run(200_000_000);
    assert!(report.finished, "{}", report.summary());
    let denied = report.mems[0].backend.denials;
    let failures = report.cpus.iter().filter(|c| c.exit_code == 1).count();
    assert!(
        denied > 0 && failures > 0,
        "expected denials under over-subscription (denials {denied}, failures {failures})"
    );
}
