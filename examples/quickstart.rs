//! Quickstart: compose a 2-CPU MPSoC with one dynamic shared memory on
//! the `SystemBuilder`, run the allocation-churn workload cycle-true
//! under a typed stop condition, and print the report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dmi_sim::sw::{workloads, WorkloadCfg};
use dmi_sim::system::{mem_base, CpuSpec, MemSpec, StopCondition, SystemBuilder};

fn main() {
    let wl = WorkloadCfg {
        mem_base: mem_base(0),
        iterations: 100,
        buf_words: 16,
        ..WorkloadCfg::default()
    };

    // Two CPUs churning allocations on the same wrapper memory.
    let mut b = SystemBuilder::new();
    let mem = b.add_memory(MemSpec::wrapper(mem_base(0)));
    for _ in 0..2 {
        b.add_cpu(CpuSpec::new(workloads::alloc_churn(&wl)));
    }
    let mut system = b.build().expect("valid system");

    // Run with an explicit stop condition: completion, or a 100M-cycle
    // budget as a safety net. The report says which one fired.
    let report = system.run_until(
        &StopCondition::all_halted().or(StopCondition::cycles(100_000_000)),
    );
    println!("run: {} (stop cause: {:?})", report.summary(), report.cause);
    println!("{}", report.memory_summary());
    println!(
        "simulation speed: {:.0} cycles/s, {:.0} instr/s",
        report.cycles_per_sec(),
        report.instructions_per_sec()
    );
    for (i, cpu) in report.cpus.iter().enumerate() {
        println!(
            "cpu{i}: {} instructions, {} bus transactions, {} wait cycles, exit {}",
            cpu.isa.instructions, cpu.cosim.transactions, cpu.cosim.bus_wait_cycles, cpu.exit_code
        );
    }
    let m = &report.mems[mem.index()];
    println!(
        "memory ({}): {} allocs, {} frees, {} reads, {} writes, {} host bytes",
        m.kind,
        m.backend.allocs,
        m.backend.frees,
        m.backend.reads,
        m.backend.writes,
        m.backend.host.bytes_allocated
    );
    println!(
        "bus: {} transactions, {:.1}% utilisation",
        report.bus.transactions,
        100.0 * report.bus.utilisation()
    );
    assert!(report.all_ok(), "workload self-check failed");
}
