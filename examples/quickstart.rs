//! Quickstart: build a 2-CPU MPSoC with one dynamic shared memory, run an
//! allocation-churn workload cycle-true, and print the report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dmi_sim::sw::{workloads, WorkloadCfg};
use dmi_sim::system::{mem_base, McSystem, SystemConfig};

fn main() {
    let wl = WorkloadCfg {
        mem_base: mem_base(0),
        iterations: 100,
        buf_words: 16,
        ..WorkloadCfg::default()
    };

    // Two CPUs churning allocations on the same wrapper memory.
    let mut system = McSystem::build(SystemConfig {
        programs: vec![workloads::alloc_churn(&wl), workloads::alloc_churn(&wl)],
        ..SystemConfig::default()
    });

    let report = system.run(100_000_000);
    println!("run: {}", report.summary());
    println!("{}", report.memory_summary());
    println!(
        "simulation speed: {:.0} cycles/s, {:.0} instr/s",
        report.cycles_per_sec(),
        report.instructions_per_sec()
    );
    for (i, cpu) in report.cpus.iter().enumerate() {
        println!(
            "cpu{i}: {} instructions, {} bus transactions, {} wait cycles, exit {}",
            cpu.isa.instructions, cpu.cosim.transactions, cpu.cosim.bus_wait_cycles, cpu.exit_code
        );
    }
    let mem = &report.mems[0];
    println!(
        "memory ({}): {} allocs, {} frees, {} reads, {} writes, {} host bytes",
        mem.kind,
        mem.backend.allocs,
        mem.backend.frees,
        mem.backend.reads,
        mem.backend.writes,
        mem.backend.host.bytes_allocated
    );
    println!(
        "bus: {} transactions, {:.1}% utilisation",
        report.bus.transactions,
        100.0 * report.bus.utilisation()
    );
    assert!(report.all_ok(), "workload self-check failed");
}
