//! VCD waveform tracing: capture the bus handshake of a small run and
//! write it to `dmi_trace.vcd` for any waveform viewer (GTKWave etc.).
//!
//! ```sh
//! cargo run --release --example wave_trace && head -40 dmi_trace.vcd
//! ```

use dmi_sim::sw::{workloads, WorkloadCfg};
use dmi_sim::system::{mem_base, McSystem, SystemConfig};

fn main() {
    let wl = WorkloadCfg {
        mem_base: mem_base(0),
        iterations: 3,
        buf_words: 4,
        ..WorkloadCfg::default()
    };
    let mut sys = McSystem::build(SystemConfig {
        programs: vec![workloads::alloc_churn(&wl)],
        ..SystemConfig::default()
    });

    // Record the clock, the CPU's bus-master signals and the memory
    // module's slave handshake.
    let traced = sys.simulator_mut().trace_matching(|name| {
        name == "clk" || name.starts_with("cpu0.bus") || name.starts_with("mem0.s")
    });
    println!("tracing {traced} signals");

    let report = sys.run(10_000_000);
    println!("{}", report.summary());
    assert!(report.all_ok());

    sys.simulator()
        .write_vcd("dmi_trace.vcd")
        .expect("write VCD");
    let changes = sys.simulator().tracer().records().len();
    println!("wrote dmi_trace.vcd ({changes} value changes)");
}
