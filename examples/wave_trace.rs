//! VCD waveform tracing: capture the bus handshake of a small
//! heterogeneous run — one CPU plus one DMA engine — and write it to
//! `dmi_trace.vcd` for any waveform viewer (GTKWave etc.).
//!
//! ```sh
//! cargo run --release --example wave_trace && head -40 dmi_trace.vcd
//! ```

use dmi_sim::masters::{DmaConfig, DmaEngine, DmaKind};
use dmi_sim::sw::{workloads, WorkloadCfg};
use dmi_sim::system::{mem_base, CpuSpec, MemSpec, SystemBuilder};

fn main() {
    let wl = WorkloadCfg {
        mem_base: mem_base(0),
        iterations: 3,
        buf_words: 4,
        ..WorkloadCfg::default()
    };
    let mut b = SystemBuilder::new();
    b.add_memory(MemSpec::wrapper(mem_base(0)));
    b.add_memory(MemSpec::static_table(mem_base(1)));
    b.add_cpu(CpuSpec::new(workloads::alloc_churn(&wl)));
    b.add_master(Box::new(DmaEngine::new(DmaConfig {
        kind: DmaKind::Fill { seed: 0xD0 },
        dst: mem_base(1),
        words: 8,
        ..DmaConfig::default()
    })));
    let mut sys = b.build().expect("valid system");

    // Record the clock, the CPU's and the DMA's bus-master signals and
    // the first memory module's slave handshake.
    let traced = sys.simulator_mut().trace_matching(|name| {
        name == "clk"
            || name.starts_with("cpu0.bus")
            || name.starts_with("dma0.bus")
            || name.starts_with("mem0.s")
    });
    println!("tracing {traced} signals");

    let report = sys.run(10_000_000);
    println!("{}", report.summary());
    println!(
        "dma0: {} transactions, done={}",
        report.masters[0].stats.transactions, report.masters[0].stats.done
    );
    assert!(report.all_ok());

    sys.simulator()
        .write_vcd("dmi_trace.vcd")
        .expect("write VCD");
    let changes = sys.simulator().tracer().records().len();
    println!("wrote dmi_trace.vcd ({changes} value changes)");
}
