//! The paper's evaluation scenario: the GSM encoder as a 4-stage pipeline
//! on 4 ISSs, frames flowing through dynamic shared memory. Verifies the
//! co-simulated output bit-exactly against the reference encoder, then
//! compares the 1-memory and 4-memory topologies (the Section 4 headline).
//!
//! ```sh
//! cargo run --release --example gsm_pipeline
//! ```

use dmi_sim::core::{MemStats, WrapperBackend};
use dmi_sim::gsm::pipeline::{self, PipelineCfg};
use dmi_sim::system::{mem_base, CpuSpec, MemSpec, SystemBuilder};

fn run(n_frames: u32, n_mems: usize) -> (dmi_sim::system::RunReport, u32) {
    let cfg = PipelineCfg {
        n_frames,
        mem_bases: (0..n_mems).map(mem_base).collect(),
        seed: 0xBEEF,
    };
    let mut b = SystemBuilder::new();
    for program in pipeline::stage_programs(&cfg) {
        b.add_cpu(CpuSpec::new(program));
    }
    for i in 0..n_mems {
        b.add_memory(MemSpec::wrapper(mem_base(i)));
    }
    let mut sys = b.build().expect("valid system");
    let report = sys.run(u64::MAX / 4);
    assert!(report.all_ok(), "{}", report.summary());
    let backend = sys
        .memory(0)
        .unwrap()
        .backend()
        .as_any()
        .downcast_ref::<WrapperBackend>()
        .unwrap();
    let result = pipeline::extract_result(backend).expect("pipeline result block");
    assert_eq!(result.frames, n_frames);
    (report, result.checksum)
}

fn mem_summary(m: &MemStats) -> String {
    format!(
        "{} allocs, {} scalar ops, {} burst beats",
        m.allocs,
        m.reads + m.writes,
        m.burst_beats
    )
}

fn main() {
    let n_frames = 4;
    let cfg1 = PipelineCfg {
        n_frames,
        mem_bases: vec![mem_base(0)],
        seed: 0xBEEF,
    };
    let expected = pipeline::expected_checksum(&cfg1);
    println!("reference checksum over {n_frames} frames: {expected:#010x}\n");

    for n_mems in [1usize, 4] {
        let (report, checksum) = run(n_frames, n_mems);
        println!("== 4 ISSs + shared bus + {n_mems} wrapper memories ==");
        println!("   {}", report.summary());
        println!(
            "   simulation speed: {:.0} cycles/s",
            report.cycles_per_sec()
        );
        println!("   pipeline checksum: {checksum:#010x} (match: {})", {
            checksum == expected
        });
        for (j, m) in report.mems.iter().enumerate() {
            println!("   mem{j}: {}", mem_summary(&m.backend));
        }
        println!();
        assert_eq!(checksum, expected, "co-simulated GSM must be bit-exact");
    }
}
