//! Memory-model comparison: the same dynamic workload on the paper's
//! host-backed wrapper vs the detailed in-simulation allocator, and the
//! equivalent static traffic on a raw table — the motivation of the paper
//! in one run, composed on the `SystemBuilder`.
//!
//! ```sh
//! cargo run --release --example memory_models
//! ```

use dmi_sim::sw::{workloads, WorkloadCfg};
use dmi_sim::system::{mem_base, CpuSpec, MemSpec, SystemBuilder};

fn main() {
    let wl = WorkloadCfg {
        mem_base: mem_base(0),
        iterations: 200,
        buf_words: 32,
        ..WorkloadCfg::default()
    };

    println!("workload: {} alloc/write/read/free iterations x 2 CPUs\n", wl.iterations);

    for (label, spec, program) in [
        (
            "wrapper (host-backed dynamic memory, the paper)",
            MemSpec::wrapper(mem_base(0)),
            workloads::alloc_churn(&wl),
        ),
        (
            "simheap (allocator simulated inside the memory)",
            MemSpec::simheap(mem_base(0)),
            workloads::alloc_churn(&wl),
        ),
        (
            "static table (no dynamic memory: raw loads/stores)",
            MemSpec::static_table(mem_base(0)),
            workloads::scalar_rw_static(&wl),
        ),
    ] {
        let mut b = SystemBuilder::new();
        let mem = b.add_memory(spec);
        for _ in 0..2 {
            b.add_cpu(CpuSpec::new(program.clone()));
        }
        let mut sys = b.build().expect("valid system");
        let report = sys.run(u64::MAX / 4);
        assert!(report.all_ok(), "{label}: {}", report.summary());
        println!("== {label} ==");
        println!(
            "   {} simulated cycles in {:.2?} ({:.0} cycles/s host speed)",
            report.sim_cycles,
            report.wall,
            report.cycles_per_sec()
        );
        let m = &report.mems[mem.index()];
        println!(
            "   memory busy {} cycles over {} transactions\n",
            m.module.busy_cycles, m.module.transactions
        );
    }

    println!(
        "Reading the results: the simheap charges simulated cycles AND host\n\
         work for every free-list probe, so both its cycle count and its\n\
         wall time balloon; the wrapper keeps cycle-true timing while doing\n\
         the storage work at host speed — the point of the DATE'05 paper."
    );
}
